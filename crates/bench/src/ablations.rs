//! Ablations beyond the paper's figures — the what-ifs its §8 discussion
//! raises, made measurable:
//!
//! * [`llc_sweep`] — "whatever the size of the LLC is, megabytes of LLC
//!   will not be enough": grow the LLC and watch who benefits.
//! * [`prefetch`] — a next-line L1I prefetcher: why instruction stalls
//!   persist for branchy legacy code but would vanish for compiled code.
//! * [`simple_core`] — §8's energy argument: a 1-wide core loses little
//!   time on these stall-dominated workloads.
//! * [`voltdb_multi_partition`] — §7's side note: without the single-site
//!   guarantee VoltDB's instruction stalls rise by ~60%.
//! * [`overlap_sensitivity`] — how robust the IPC conclusions are to the
//!   cycle model's LLC-miss overlap weight.

use engines::{build_system, SystemKind, VoltDb};
use microarch::{measure, Measurement, WindowSpec};
use oltp::Db;
use uarch_sim::{MachineConfig, Sim};
use workloads::{DbSize, MicroBench, Workload};

use crate::figures::systems;
use crate::scale_factor;

fn window() -> WindowSpec {
    WindowSpec {
        warmup: 2500,
        measured: 5000,
        reps: 2,
    }
    .scaled(scale_factor())
}

/// Run the 100 GB read-only micro-benchmark on `system` under `cfg`.
fn run_micro(system: SystemKind, cfg: MachineConfig, multi_partition: bool) -> Measurement {
    let sim = Sim::new(cfg);
    let mut db: Box<dyn Db> = match system {
        SystemKind::VoltDb if multi_partition => {
            let mut v = VoltDb::new(&sim, 1);
            v.set_single_sited(false);
            Box::new(v)
        }
        k => build_system(k, &sim, 1),
    };
    let mut w = MicroBench::new(DbSize::Gb100);
    sim.offline(|| w.setup(db.as_mut(), 1));
    sim.warm_data();
    let mut s = db.session(0);
    measure(&sim, 0, window(), |_| w.exec(s.as_mut(), 0).expect("txn"))
}

fn i_spki(m: &Measurement) -> f64 {
    m.spki[..3].iter().sum()
}

/// Instruction stall cycles per transaction.
fn i_spt(m: &Measurement) -> f64 {
    m.spt[..3].iter().sum()
}

/// LLC capacity sweep.
pub fn llc_sweep() -> String {
    let mut out = String::from(
        "## ablation: LLC capacity (read-only micro-benchmark, 100GB)\n\
         system      llc      IPC    LLCD/kI\n\
         -------------------------------------\n",
    );
    for &sys in &systems() {
        for &mb in &[4u64, 16, 64, 256] {
            let mut cfg = MachineConfig::ivy_bridge(1);
            cfg.llc = uarch_sim::config::CacheGeometry::new(mb << 20, 64, 16);
            let m = run_micro(sys, cfg, false);
            out.push_str(&format!(
                "{:<11} {:>4}MB {:>6.2} {:>8.0}\n",
                sys.label(),
                mb,
                m.ipc,
                m.spki[5]
            ));
        }
    }
    out.push_str(
        "\nEven a 16x larger LLC leaves the working set uncached — the paper's\n\
         \"megabytes of LLC will not be enough\" argument.\n",
    );
    out
}

/// Next-line instruction prefetcher on/off.
pub fn prefetch() -> String {
    let mut out = String::from(
        "## ablation: next-line L1I prefetcher (read-only micro-benchmark, 100GB)\n\
         system      prefetch   IPC   L1I/kI   I-total/kI\n\
         ------------------------------------------------\n",
    );
    for &sys in &systems() {
        for &pf in &[false, true] {
            let mut cfg = MachineConfig::ivy_bridge(1);
            cfg.i_prefetch_next_line = pf;
            let m = run_micro(sys, cfg, false);
            out.push_str(&format!(
                "{:<11} {:>8} {:>6.2} {:>7.0} {:>11.0}\n",
                sys.label(),
                if pf { "on" } else { "off" },
                m.ipc,
                m.spki[0],
                i_spki(&m)
            ));
        }
    }
    out.push_str(
        "\nSequential stretches prefetch well; the branchy frontends keep missing\n\
         — why L1I stalls persist on real hardware despite aggressive fetch\n\
         engines.\n",
    );
    out
}

/// 4-wide out-of-order vs a simple 1-wide core (§8's implication).
pub fn simple_core() -> String {
    let mut out = String::from(
        "## ablation: simple core (1-wide) vs 4-wide OOO (micro, 100GB)\n\
         system      core     IPC   cycles/txn   slowdown\n\
         --------------------------------------------------\n",
    );
    for &sys in &systems() {
        let wide = run_micro(sys, MachineConfig::ivy_bridge(1), false);
        let mut cfg = MachineConfig::ivy_bridge(1);
        cfg.ideal_ipc = 1.0;
        cfg.retire_width = 1;
        // A simple in-order core hides nothing.
        cfg.overlap.l1d = 1.0;
        cfg.overlap.l2d = 1.0;
        cfg.overlap.llc_d = 1.35;
        let narrow = run_micro(sys, cfg, false);
        let wide_cpt = wide.cycles / wide.txns as f64;
        let narrow_cpt = narrow.cycles / narrow.txns as f64;
        out.push_str(&format!(
            "{:<11} 4-wide {:>6.2} {:>11.0} {:>9}\n{:<11} 1-wide {:>6.2} {:>11.0} {:>8.2}x\n",
            sys.label(),
            wide.ipc,
            wide_cpt,
            "-",
            "",
            narrow.ipc,
            narrow_cpt,
            narrow_cpt / wide_cpt
        ));
    }
    out.push_str(
        "\nStall-dominated workloads lose far less than 4x on a 1-wide core —\n\
         the paper's case for simpler, more energy-efficient cores.\n",
    );
    out
}

/// VoltDB with and without the single-site guarantee.
pub fn voltdb_multi_partition() -> String {
    let single = run_micro(SystemKind::VoltDb, MachineConfig::ivy_bridge(1), false);
    let multi = run_micro(SystemKind::VoltDb, MachineConfig::ivy_bridge(1), true);
    let rise = (i_spt(&multi) / i_spt(&single) - 1.0) * 100.0;
    format!(
        "## ablation: VoltDB single-site guarantee (micro, 100GB)\n\
         config              IPC   instr/txn   I-stalls/txn\n\
         --------------------------------------------------\n\
         single-sited     {:>6.2} {:>11.0} {:>14.0}\n\
         multi-partition  {:>6.2} {:>11.0} {:>14.0}\n\
         \nInstruction stalls per transaction rise by {:.0}% without the\n\
         single-site guarantee (the paper reports ~60%).\n",
        single.ipc,
        single.instr_per_txn,
        i_spt(&single),
        multi.ipc,
        multi.instr_per_txn,
        i_spt(&multi),
        rise
    )
}

/// Sensitivity of IPC to the LLC-miss overlap weight.
pub fn overlap_sensitivity() -> String {
    let mut out = String::from(
        "## ablation: cycle-model sensitivity to the LLC-miss weight\n\
         weight   Shore-MT   HyPer   (IPC at 100GB; ordering must not flip)\n\
         -------------------------------------------------------------------\n",
    );
    let mut ordering_stable = true;
    for &w in &[0.7, 1.0, 1.35, 1.7] {
        let mut cfg = MachineConfig::ivy_bridge(1);
        cfg.overlap.llc_d = w;
        let shore = run_micro(SystemKind::ShoreMt, cfg.clone(), false);
        let hyper = run_micro(SystemKind::HyPer, cfg, false);
        ordering_stable &= hyper.ipc < shore.ipc;
        out.push_str(&format!(
            "{w:>6.2} {:>10.2} {:>7.2}\n",
            shore.ipc, hyper.ipc
        ));
    }
    out.push_str(&format!(
        "\nHyPer stays the slowest at 100GB across the whole weight range: {}\n",
        if ordering_stable {
            "yes"
        } else {
            "NO (model fragile!)"
        }
    ));
    out
}

/// TPC-E-like vs TPC-C: the similarity claim the paper cites to justify
/// omitting TPC-E ("recent workload characterization studies demonstrate
/// that TPC-E exhibits similar micro-architectural behavior", §3).
pub fn tpce_similarity() -> String {
    use crate::{run_points, Point, WorkloadCfg};
    use engines::SystemKind;

    let sys: Vec<SystemKind> = systems()
        .into_iter()
        .map(|s| match s {
            SystemKind::DbmsM { .. } => SystemKind::dbms_m_for_tpcc(),
            other => other,
        })
        .collect();
    let mut points = Vec::new();
    for &s in &sys {
        points.push(Point::new(s, WorkloadCfg::TpcC));
        points.push(Point::new(s, WorkloadCfg::TpcE));
    }
    let ms = run_points(&points);
    let mut out = String::from(
        "## extension: TPC-E-like vs TPC-C (the paper's omission argument)\n\
         system      wk     IPC   I-stalls/kI  D-stalls/kI  I-fraction\n\
         ------------------------------------------------------------\n",
    );
    let mut similar = true;
    for (i, &s) in sys.iter().enumerate() {
        let c = &ms[2 * i];
        let e = &ms[2 * i + 1];
        for (wk, m) in [("tpcc", c), ("tpce", e)] {
            out.push_str(&format!(
                "{:<11} {:<5} {:>6.2} {:>12.0} {:>12.0} {:>11.2}\n",
                s.label(),
                wk,
                m.ipc,
                i_spki(m),
                m.spki[3..].iter().sum::<f64>(),
                m.instruction_stall_fraction(),
            ));
        }
        similar &= (c.instruction_stall_fraction() - e.instruction_stall_fraction()).abs() < 0.35
            && (c.ipc - e.ipc).abs() < 0.45;
    }
    out.push_str(&format!(
        "\nProfiles similar enough to justify the paper's omission of TPC-E: {}\n",
        if similar { "yes" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltdb_mp_path_charges_more_instructions() {
        // Shrunk inline version of the ablation (full windows are for the
        // binary): multi-partition VoltDB must retire more instructions
        // and stall more on the instruction side.
        let run = |mp: bool| {
            let sim = Sim::new(MachineConfig::ivy_bridge(1));
            let mut v = VoltDb::new(&sim, 1);
            v.set_single_sited(!mp);
            let mut db: Box<dyn Db> = Box::new(v);
            let mut w = MicroBench::new(DbSize::Mb1).with_rows(20_000);
            sim.offline(|| w.setup(db.as_mut(), 1));
            sim.warm_data();
            let mut s = db.session(0);
            let spec = WindowSpec {
                warmup: 400,
                measured: 800,
                reps: 1,
            };
            measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).unwrap())
        };
        let single = run(false);
        let multi = run(true);
        assert!(multi.instr_per_txn > single.instr_per_txn * 1.2);
        assert!(
            i_spt(&multi) > i_spt(&single) * 1.3,
            "mp={:.0} single={:.0}",
            i_spt(&multi),
            i_spt(&single)
        );
    }
}
