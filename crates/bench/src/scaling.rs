//! `figures scaling` — throughput/IPC scaling vs worker count.
//!
//! The paper's §7 runs its multi-threaded experiments at one fixed client
//! count; this grid sweeps the worker count instead and contrasts the
//! partitioned engines (VoltDB, HyPer: one worker per partition, disjoint
//! data) with the shared-everything ones (Shore-MT, DBMS D, DBMS M: every
//! worker fights over the same records and the shared LLC). The workload is
//! the partition-local read-write micro-benchmark, so any scaling loss is
//! pure engine/coherence overhead, not logical contention.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use engines::SystemKind;
use microarch::{Measurement, WindowSpec};
use workloads::DbSize;

use crate::{run_points, scale_factor, Point, WorkloadCfg};

/// One cell of the scaling grid.
pub struct ScalingRow {
    /// System label.
    pub system: &'static str,
    /// Whether the engine is partitioned (VoltDB, HyPer).
    pub partitioned: bool,
    /// Worker threads in this cell.
    pub workers: usize,
    /// The averaged multi-worker measurement. `tps`/`ipc`/`spki` are
    /// per-worker averages; workers run concurrently, so the aggregate
    /// system throughput is [`ScalingRow::aggregate_tps`].
    pub measurement: Measurement,
    /// Aggregate throughput relative to the same system's 1-worker cell.
    pub speedup: f64,
}

impl ScalingRow {
    /// Aggregate simulated throughput: workers run concurrently, so the
    /// system-level rate is the per-worker average times the worker count.
    pub fn aggregate_tps(&self) -> f64 {
        self.measurement.tps * self.workers as f64
    }
}

/// Worker counts swept per system. The smoke grid still reaches 4 workers
/// — the contended case the lock-free simulator fast path is built for —
/// just with a shrunken measurement window.
pub fn worker_grid(smoke: bool) -> Vec<usize> {
    let _ = smoke;
    vec![1, 2, 4]
}

fn window(smoke: bool) -> WindowSpec {
    let base = WindowSpec {
        warmup: 300,
        measured: 800,
        reps: 2,
    };
    base.scaled(if smoke {
        scale_factor().min(0.5)
    } else {
        scale_factor()
    })
}

/// Run the full grid: every system crossed with every worker count.
pub fn scaling_grid(smoke: bool) -> Vec<ScalingRow> {
    let workload = WorkloadCfg::Micro {
        size: DbSize::Mb10,
        rows_per_txn: 1,
        read_only: false,
        strings: false,
    };
    let workers = worker_grid(smoke);
    let win = window(smoke);
    let mut points = Vec::new();
    for &sys in SystemKind::ALL.iter() {
        for &w in &workers {
            points.push(Point::new(sys, workload.clone()).workers(w).window(win));
        }
    }
    let ms = run_points(&points);
    let mut rows: Vec<ScalingRow> = points
        .iter()
        .zip(ms)
        .map(|(p, m)| ScalingRow {
            system: p.system().label(),
            partitioned: p.system().partitioned(),
            workers: p.worker_count(),
            measurement: m,
            speedup: 0.0,
        })
        .collect();
    for i in 0..rows.len() {
        let base = rows
            .iter()
            .find(|r| r.system == rows[i].system && r.workers == 1)
            .map(|r| r.measurement.tps)
            .unwrap_or(0.0);
        rows[i].speedup = if base > 0.0 {
            rows[i].aggregate_tps() / base
        } else {
            0.0
        };
    }
    rows
}

/// Aligned text table.
pub fn render(rows: &[ScalingRow]) -> String {
    let mut out =
        String::from("== scaling: read-write micro-benchmark (10MB, partition-local keys) ==\n");
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>12} {:>12} {:>6} {:>9} {:>8}",
        "system", "workers", "tps", "tps/worker", "IPC", "SPKI", "speedup"
    );
    let mut last = "";
    for r in rows {
        if r.system != last && !last.is_empty() {
            out.push('\n');
        }
        last = r.system;
        let m = &r.measurement;
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12.0} {:>12.0} {:>6.2} {:>9.0} {:>7.2}x",
            r.system,
            r.workers,
            r.aggregate_tps(),
            m.tps,
            m.ipc,
            m.spki_total(),
            r.speedup
        );
    }
    out.push_str(
        "\nPartitioned engines (VoltDB, HyPer) keep workers on disjoint data;\n\
         the shared-everything engines pay lock and coherence traffic for the\n\
         same offered load, so their aggregate throughput scales worse.\n",
    );
    out
}

/// CSV rendering (one row per grid cell).
pub fn render_csv(rows: &[ScalingRow]) -> String {
    let mut out =
        String::from("system,partitioned,workers,txns,tps,tps_per_worker,ipc,spki,speedup\n");
    for r in rows {
        let m = &r.measurement;
        let _ = writeln!(
            out,
            "{},{},{},{},{:.1},{:.1},{:.4},{:.1},{:.3}",
            r.system,
            r.partitioned,
            r.workers,
            m.txns,
            r.aggregate_tps(),
            m.tps,
            m.ipc,
            m.spki_total(),
            r.speedup
        );
    }
    out
}

/// Run the grid, write `results/scaling.csv`, and return the text table.
pub fn run(repo_root: &Path, smoke: bool) -> String {
    let rows = scaling_grid(smoke);
    let results = repo_root.join("results");
    fs::create_dir_all(&results).expect("create results dir");
    fs::write(results.join("scaling.csv"), render_csv(&rows)).expect("write scaling.csv");
    let mut out = render(&rows);
    let _ = writeln!(out, "\ncsv: {}", results.join("scaling.csv").display());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_contrasts_partitioned_and_shared() {
        std::env::set_var("IMOLTP_SCALE", "0.2");
        let rows = scaling_grid(true);
        // One row per (system, workers) cell.
        assert_eq!(rows.len(), SystemKind::ALL.len() * worker_grid(true).len());
        for r in &rows {
            assert!(r.measurement.tps > 0.0, "{} tps", r.system);
            if r.workers == 1 {
                assert!((r.speedup - 1.0).abs() < 1e-9);
            }
        }
        // Partitioned engines must scale strictly better than every
        // shared-everything engine at the top worker count: they own their
        // partitions outright, while the shared-everything engines pay the
        // latch-contention and coherence tax. Deterministic simulation, so
        // no noise margin is needed.
        let top = *worker_grid(true).last().unwrap();
        let best_shared = rows
            .iter()
            .filter(|r| !r.partitioned && r.workers == top)
            .map(|r| r.speedup)
            .fold(0.0, f64::max);
        for r in rows.iter().filter(|r| r.partitioned && r.workers == top) {
            assert!(
                r.speedup > best_shared,
                "{}: speedup {:.3} <= best shared {:.3}",
                r.system,
                r.speedup,
                best_shared
            );
        }
        let csv = render_csv(&rows);
        assert!(csv.lines().count() == rows.len() + 1);
        assert!(render(&rows).contains("speedup"));
    }
}
