//! Chaos harness: drive an engine under deterministic fault injection
//! with a real recovery policy, and verify nothing was lost.
//!
//! One chaos run installs a [`faults::FaultPlan`] (seed + per-site rates)
//! and executes a lockstep multi-worker window in which every worker
//! alternates between
//!
//! * a **verified counter increment** on its own worker-private rows of a
//!   dedicated `chaos_counters` table (the lost-update oracle), and
//! * a regular transaction of the configured workload (realistic traffic).
//!
//! Failures recover through [`oltp::retry`]: bounded exponential backoff
//! with deterministic jitter for conflict-class errors, bounded plain
//! retry for abort-class errors, session re-open on poison, and a
//! `gave_up` record — never a panicked barrier — when the policy is
//! exhausted. Backoff is charged to the worker's simulated core as
//! retired instructions, so the recovery policy is visible in the counter
//! profile exactly like a PAUSE loop would be on real hardware.
//!
//! **Fault sites.** Harness-level sites work in every build:
//! `driver/conflict`, `driver/abort` (forced errors before dispatch),
//! `driver/poison` (session poisoning; sticky until re-open), and
//! `core/offline` (the worker's simulated core drops traffic for a fixed
//! window — degraded placement à la Hardware Islands). Engine-internal
//! sites (`shore_mt/latch`, `shore_mt/wal`, `dbms_d/latch`, `dbms_d/wal`,
//! `voltdb/claim`, `voltdb/clog`, `hyper/claim`, `hyper/wal`,
//! `dbms_m/latch`, `dbms_m/validate`) exist only under `--features
//! faults`; in default builds those hooks compile to nothing.
//!
//! **Oracle under ambiguity.** In-place engines have no physical undo, so
//! an error injected at the *commit* site leaves the increment possibly
//! applied. The oracle therefore tracks confirmed commits exactly and
//! counts ambiguous commit failures separately: the final value must lie
//! in `[confirmed, confirmed + ambiguous]`. Anything below is a lost
//! update; anything above is a phantom.
//!
//! **Determinism.** Fault decisions are a pure function of
//! `(seed, site, core, ordinal)`, pacing is lockstep, and backoff jitter
//! is seeded — so a run is a pure function of its manifest. At fault-rate
//! 0 the run is byte-identical to a fault-free run of the same schedule
//! (the per-core counter digests are reproduced exactly).

use std::fs;
use std::io::BufWriter;
use std::path::Path;
use std::sync::Mutex;

use engines::{CcPolicy, SystemBuilder, SystemKind};
use faults::FaultPlan;
use microarch::{measure_workers, Measurement, Pacing, WindowSpec};
use obs::json::Json;
use obs::sink::{JsonlSink, VecSink};
use obs::{hist::Histogram, Phase, Tracer};
use oltp::retry::{retry_txn, Backoff, RetryPolicy, RetryStats, TxnOutcome};
use oltp::{Column, DataType, OltpError, OltpResult, Schema, Session, TableDef, TableId, Value};
use uarch_sim::{EventCounts, MachineConfig, Sim};
use workloads::Workload;

use crate::{scale_factor, WorkloadCfg};

/// Worker-private oracle rows per worker.
const KEYS_PER_WORKER: u64 = 4;

/// Fixed length (in transaction slots) of a core-offline window.
const OFFLINE_TXNS: u64 = 8;

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosCfg {
    /// Engine under test.
    pub system: SystemKind,
    /// Workload providing the realistic traffic half of the schedule.
    pub workload: WorkloadCfg,
    /// Workload CLI name (for manifests and file slugs).
    pub workload_name: String,
    /// Fault-plan seed.
    pub seed: u64,
    /// Base firing rate for every site (poison/offline run at 1/8 of it).
    pub fault_rate: f64,
    /// Worker threads (= simulated cores = partitions).
    pub workers: usize,
    /// Sockets of the simulated machine (`workers` must divide evenly
    /// across them). 1 — the default — is bit-identical to the historical
    /// single-socket harness; more sockets deploy the engine island-style
    /// (each partition homed with its worker), so `core/offline` faults on
    /// the upper worker range hit a remote socket.
    pub sockets: usize,
    /// Measurement window; `None` uses the chaos default scaled by
    /// `IMOLTP_SCALE`.
    pub window: Option<WindowSpec>,
    /// Retry/backoff policy.
    pub policy: RetryPolicy,
    /// Exact plan to install instead of the one derived from
    /// `seed`/`fault_rate` — used when replaying a manifest whose plan may
    /// carry site rules this builder doesn't produce.
    pub plan_override: Option<FaultPlan>,
    /// Concurrency-control protocol under test
    /// ([`CcPolicy::EngineDefault`] = the engine's historical protocol).
    pub cc: CcPolicy,
}

impl ChaosCfg {
    /// Defaults for `bench chaos <system> <workload>`.
    pub fn new(system: SystemKind, workload: WorkloadCfg, workload_name: &str) -> Self {
        ChaosCfg {
            system,
            workload,
            workload_name: workload_name.to_string(),
            seed: 1,
            fault_rate: 0.05,
            workers: 2,
            sockets: 1,
            window: None,
            policy: RetryPolicy::default(),
            plan_override: None,
            cc: CcPolicy::EngineDefault,
        }
    }

    /// The plan this configuration installs.
    pub fn plan(&self) -> FaultPlan {
        if let Some(plan) = &self.plan_override {
            return plan.clone();
        }
        FaultPlan::uniform(self.seed, self.fault_rate)
            .site("driver/poison", self.fault_rate / 8.0)
            .site("core/offline", self.fault_rate / 8.0)
    }

    fn effective_window(&self) -> WindowSpec {
        self.window.unwrap_or_else(|| {
            WindowSpec {
                warmup: 100,
                measured: 400,
                reps: 1,
            }
            .scaled(scale_factor())
        })
    }
}

/// Aggregated outcome counters of one chaos run (the retry-layer stats
/// plus the harness-level recovery events).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosOutcomes {
    /// Retry-layer counters (commits, retries, give-ups, backoff units).
    pub retry: RetryStats,
    /// Forced `driver/conflict` faults fired.
    pub driver_conflicts: u64,
    /// Forced `driver/abort` faults fired.
    pub driver_aborts: u64,
    /// Sessions poisoned.
    pub poisons: u64,
    /// Sessions re-opened after poison.
    pub reopens: u64,
    /// Core-offline windows entered.
    pub offline_events: u64,
    /// Transaction slots idled while a core was offline.
    pub offline_txns: u64,
    /// Commit-stage failures with ambiguous durability (see module docs).
    pub ambiguous_commits: u64,
}

/// Result of one chaos run.
pub struct ChaosReport {
    /// Aggregated counters.
    pub outcomes: ChaosOutcomes,
    /// Attempts-per-committed-transaction distribution (1 = first try).
    pub retry_hist: Histogram,
    /// Backoff-units-per-pause distribution.
    pub backoff_hist: Histogram,
    /// Per-core FNV digests over aggregate + per-module counters, taken
    /// immediately after the measured window (before verification reads).
    pub digests: Vec<u64>,
    /// FNV digest over the final `(key, value)` contents of the oracle
    /// table (read after the plan is disarmed).
    pub table_digest: u64,
    /// Oracle violations: committed increments missing from the table.
    pub lost_updates: u64,
    /// Oracle violations: increments beyond `confirmed + ambiguous`.
    pub phantom_updates: u64,
    /// Total faults fired (all sites).
    pub faults_fired: u64,
    /// The windowed measurement of the chaos run.
    pub measurement: Measurement,
    /// Merged per-worker span stream (simulated-timestamp order), for
    /// export through the standard obs sinks.
    pub spans: Vec<obs::SpanRecord>,
    /// The replayable manifest (plan + schedule + outcomes + digests).
    pub manifest: Json,
}

impl ChaosReport {
    /// Whether the oracle held: every confirmed commit is in the table and
    /// nothing beyond the ambiguity bound appeared.
    pub fn consistent(&self) -> bool {
        self.lost_updates == 0 && self.phantom_updates == 0
    }
}

/// FNV-1a over a stream of u64 words (same digest the golden-counter
/// tests use, so drift anywhere in the counter state flips it).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn counts(&mut self, c: &EventCounts) {
        self.word(c.instructions);
        self.word(c.code_fetches);
        self.word(c.loads);
        self.word(c.stores);
        for m in c.misses {
            self.word(m);
        }
        self.word(c.mispredicts);
        self.word(c.store_misses);
        self.word(c.invalidations);
    }
}

fn core_digest(sim: &Sim, core: usize) -> u64 {
    let mut h = Fnv::new();
    h.counts(&sim.counters(core));
    let mods = sim.module_counters(core);
    h.word(mods.len() as u64);
    for mc in &mods {
        h.counts(mc);
    }
    h.0
}

/// Per-worker chaos state, kept in a `Mutex` slot so the step closure
/// (running on the worker thread) and the post-run verifier can both
/// reach it. Uncontended: only the owning worker locks it during the run.
struct ChaosWorker {
    worker: usize,
    session: Option<Box<dyn Session>>,
    keys: Vec<u64>,
    /// Confirmed committed increments per key.
    confirmed: Vec<u64>,
    /// Commit-stage failures per key whose durability is unknown.
    ambiguous: Vec<u64>,
    stats: RetryStats,
    out: ChaosOutcomes,
    backoff: Backoff,
    retry_hist: Histogram,
    backoff_hist: Histogram,
    txn_no: u64,
    offline_until: Option<u64>,
}

/// Run one chaos point. Serializes against any other chaos run in the
/// process (the fault injector is global), installs the plan for exactly
/// the measured window, and verifies the oracle with faults disarmed.
pub fn run(cfg: &ChaosCfg) -> ChaosReport {
    let workers = cfg.workers.max(1);
    let plan = cfg.plan();
    let window = cfg.effective_window();

    // Claim the process-global injector BEFORE loading: a concurrent
    // chaos test must not have its plan armed while this run's load
    // traffic passes the (feature-gated) engine hooks.
    let quiesced = faults::quiesce();

    let sockets = cfg.sockets.max(1);
    assert!(
        workers.is_multiple_of(sockets),
        "chaos workers ({workers}) must divide evenly across {sockets} socket(s)"
    );
    // numa(1, n) is bit-identical to ivy_bridge(n), and Island placement
    // is a no-op on one socket, so the default configuration reproduces
    // every historical manifest digest exactly.
    let sim = Sim::new(MachineConfig::numa(sockets, workers / sockets));
    let mut db = SystemBuilder::new(cfg.system)
        .cores(workers)
        .partitions(workers)
        .cc(cfg.cc)
        .placement(engines::Placement::Island)
        .build(&sim);

    // The oracle table: KEYS_PER_WORKER rows per worker, inserted through
    // that worker's session so partitioned engines keep them single-site.
    let ctable = db.create_table(TableDef::new(
        "chaos_counters",
        Schema::new(vec![
            Column::new("key", DataType::Long),
            Column::new("hits", DataType::Long),
        ]),
        workers as u64 * KEYS_PER_WORKER,
    ));
    let mut w = cfg.workload.build();
    sim.offline(|| {
        // Oracle rows go in first so the workload's `setup` (which ends
        // with `finish_load`) still runs last, as every loader expects.
        for worker in 0..workers {
            let mut s = db.session(worker);
            for k in 0..KEYS_PER_WORKER {
                let key = oracle_key(worker, workers, k);
                s.begin();
                s.insert(ctable, key, &[Value::Long(key as i64), Value::Long(0)])
                    .expect("oracle row insert");
                s.commit().expect("oracle row commit");
            }
        }
        w.setup(db.as_mut(), workers);
    });
    sim.warm_data();

    let engine: &'static str = db.name();
    let slots: Vec<Mutex<ChaosWorker>> = (0..workers)
        .map(|worker| {
            Mutex::new(ChaosWorker {
                worker,
                session: None,
                keys: (0..KEYS_PER_WORKER)
                    .map(|k| oracle_key(worker, workers, k))
                    .collect(),
                confirmed: vec![0; KEYS_PER_WORKER as usize],
                ambiguous: vec![0; KEYS_PER_WORKER as usize],
                stats: RetryStats::default(),
                out: ChaosOutcomes::default(),
                backoff: Backoff::new(cfg.policy, (cfg.seed ^ ((worker as u64) << 32)) | 1),
                retry_hist: Histogram::new(),
                backoff_hist: Histogram::new(),
                txn_no: 0,
                offline_until: None,
            })
        })
        .collect();
    let span_sinks: Vec<VecSink> = (0..workers).map(|_| VecSink::new()).collect();

    // Arm the injector for exactly the measured window, carrying over the
    // claim taken before the load.
    let installed = quiesced.install(plan.clone());

    let cores: Vec<usize> = (0..workers).collect();
    let wl = Mutex::new(w);
    let measurement = {
        let db = &*db;
        let wl = &wl;
        let slots = &slots;
        let sim_handle = &sim;
        let span_sinks = &span_sinks;
        let policy = cfg.policy;
        measure_workers(&sim, &cores, window, Pacing::Lockstep, |worker| {
            let mut session = Some(db.session(worker));
            let sink = span_sinks[worker].clone();
            let tracer_sim = sim_handle.clone();
            let mut installed_tracer = false;
            let mem = sim_handle.mem(worker);
            move |_| {
                if !installed_tracer {
                    // Tracers are thread-local: install this worker's on
                    // its own thread, on its first turn.
                    let tracer = Tracer::new(&tracer_sim);
                    tracer.add_sink(Box::new(sink.clone()));
                    obs::install(tracer);
                    installed_tracer = true;
                }
                let mut slot = slots[worker].lock().unwrap();
                if slot.session.is_none() {
                    slot.session = session.take();
                }
                let slot = &mut *slot;

                // Core-offline window in force: the worker idles this slot.
                if let Some(until) = slot.offline_until {
                    if slot.txn_no < until {
                        slot.out.offline_txns += 1;
                        slot.txn_no += 1;
                        return;
                    }
                    mem.sim().set_core_offline(worker, false);
                    slot.offline_until = None;
                }
                if faults::fire("core/offline", worker) {
                    mem.sim().set_core_offline(worker, true);
                    slot.out.offline_events += 1;
                    slot.offline_until = Some(slot.txn_no + OFFLINE_TXNS);
                    slot.out.offline_txns += 1;
                    slot.txn_no += 1;
                    return;
                }
                if faults::fire("driver/poison", worker) {
                    faults::poison(worker);
                    slot.out.poisons += 1;
                }

                let mut outcome = run_one(slot, wl, ctable, engine, &policy, &mem);
                if matches!(
                    &outcome,
                    TxnOutcome::GaveUp {
                        error: OltpError::SessionPoisoned,
                        ..
                    }
                ) {
                    // Recovery: drop the wedged session (returns its core
                    // port), open a fresh one, heal, and run the txn again.
                    // The poison give-up was session loss, not txn loss —
                    // take it back out of the gave_up count.
                    slot.stats.gave_up -= 1;
                    slot.session = None;
                    slot.session = Some(db.session(worker));
                    faults::heal(worker);
                    slot.out.reopens += 1;
                    outcome = run_one(slot, wl, ctable, engine, &policy, &mem);
                }
                slot.retry_hist.record(u64::from(outcome.attempts()));
                slot.txn_no += 1;
            }
        })
    };

    // Digests first: they certify the measured window, not the
    // verification reads below.
    let digests: Vec<u64> = (0..workers).map(|c| core_digest(&sim, c)).collect();
    let faults_fired = installed.fired_count();
    let fired = installed.fired();
    drop(installed); // disarm before verification

    // Merge the per-thread span streams (by simulated timestamp) and
    // export them through the standard obs sinks.
    let merged = obs::merge_span_streams(span_sinks.iter().map(|s| s.take()).collect());
    let span_count = merged.len() as u64;

    // Verification: read the oracle table through fresh sessions with the
    // injector disarmed. Any worker cores left offline come back first.
    let mut lost = 0u64;
    let mut phantom = 0u64;
    let mut outcomes = ChaosOutcomes::default();
    let mut retry_hist = Histogram::new();
    let mut backoff_hist = Histogram::new();
    let mut table_fnv = Fnv::new();
    for slot in &slots {
        let mut slot = slot.lock().unwrap();
        sim.set_core_offline(slot.worker, false);
        slot.session = None; // return the port before re-opening
        let mut s = db.session(slot.worker);
        for ki in 0..KEYS_PER_WORKER as usize {
            let key = slot.keys[ki];
            s.begin();
            let row = s.read(ctable, key).expect("oracle read");
            s.commit().expect("oracle read commit");
            let Some(row) = row else {
                panic!("oracle key {key} missing after the run")
            };
            let Value::Long(v) = row[1] else {
                panic!("oracle value column changed type")
            };
            let actual = v as u64;
            let lo = slot.confirmed[ki];
            let hi = lo + slot.ambiguous[ki];
            lost += lo.saturating_sub(actual);
            phantom += actual.saturating_sub(hi);
            table_fnv.word(key);
            table_fnv.word(actual);
        }
        outcomes.retry.merge(&slot.stats);
        outcomes.driver_conflicts += slot.out.driver_conflicts;
        outcomes.driver_aborts += slot.out.driver_aborts;
        outcomes.poisons += slot.out.poisons;
        outcomes.reopens += slot.out.reopens;
        outcomes.offline_events += slot.out.offline_events;
        outcomes.offline_txns += slot.out.offline_txns;
        outcomes.ambiguous_commits += slot.out.ambiguous_commits;
        retry_hist.merge(&slot.retry_hist);
        backoff_hist.merge(&slot.backoff_hist);
    }

    let manifest = manifest_json(
        cfg,
        &plan,
        window,
        &outcomes,
        &retry_hist,
        &backoff_hist,
        &digests,
        table_fnv.0,
        lost,
        phantom,
        faults_fired,
        span_count,
        &fired,
        &measurement,
    );

    ChaosReport {
        outcomes,
        retry_hist,
        backoff_hist,
        digests,
        table_digest: table_fnv.0,
        lost_updates: lost,
        phantom_updates: phantom,
        faults_fired,
        measurement,
        spans: merged,
        manifest,
    }
}

/// Stable oracle key for `(worker, k)`; strided so index structures see
/// the same sparsity the workload tables do.
fn oracle_key(worker: usize, workers: usize, k: u64) -> u64 {
    (k * workers as u64 + worker as u64) * 64
}

/// CLI name for a system (the inverse of `trace::parse_system`), so a
/// manifest replays through the same front-end that produced it.
pub fn system_cli(kind: SystemKind) -> &'static str {
    use engines::DbmsMIndex;
    match kind {
        SystemKind::ShoreMt => "shore-mt",
        SystemKind::DbmsD => "dbmsd",
        SystemKind::VoltDb => "voltdb",
        SystemKind::HyPer => "hyper",
        SystemKind::DbmsM {
            index: DbmsMIndex::Hash,
            compiled: true,
        } => "dbmsm",
        SystemKind::DbmsM {
            index: DbmsMIndex::Hash,
            compiled: false,
        } => "dbmsm-interp",
        SystemKind::DbmsM {
            index: DbmsMIndex::BTree,
            ..
        } => "dbmsm-btree",
    }
}

/// One logical transaction under the retry policy: even slots run the
/// verified increment, odd slots run the workload. Backoff pauses retire
/// instructions on the worker's core so recovery cost is observable.
fn run_one(
    slot: &mut ChaosWorker,
    wl: &Mutex<Box<dyn Workload>>,
    ctable: TableId,
    engine: &'static str,
    policy: &RetryPolicy,
    mem: &uarch_sim::Mem,
) -> TxnOutcome {
    let worker = slot.worker;
    let is_increment = slot.txn_no.is_multiple_of(2);
    // Split the borrows: retry_txn's two closures each need slot state.
    let ChaosWorker {
        session,
        stats,
        backoff,
        backoff_hist,
        out,
        keys,
        confirmed,
        ambiguous,
        txn_no,
        ..
    } = slot;
    let txn_no = *txn_no;
    let mut attempt = |_k: u32| -> OltpResult<()> {
        let _t = obs::span(engine, Phase::Txn, worker);
        if faults::poisoned(worker) {
            return Err(OltpError::SessionPoisoned);
        }
        if faults::fire("driver/conflict", worker) {
            out.driver_conflicts += 1;
            return Err(OltpError::Conflict {
                table: ctable,
                key: 0,
            });
        }
        if faults::fire("driver/abort", worker) {
            out.driver_aborts += 1;
            return Err(OltpError::Aborted("injected driver abort"));
        }
        let s = session.as_mut().expect("session open").as_mut();
        if is_increment {
            let ki = (txn_no / 2 % KEYS_PER_WORKER) as usize;
            let key = keys[ki];
            s.begin();
            match s.update(ctable, key, &mut |row| {
                if let Value::Long(v) = &mut row[1] {
                    *v += 1;
                }
            }) {
                Ok(found) => {
                    debug_assert!(found, "oracle key {key} vanished");
                    match s.commit() {
                        Ok(()) => {
                            confirmed[ki] += 1;
                            Ok(())
                        }
                        Err(e) => {
                            s.abort();
                            ambiguous[ki] += 1;
                            out.ambiguous_commits += 1;
                            Err(e)
                        }
                    }
                }
                Err(e) => {
                    s.abort();
                    Err(e)
                }
            }
        } else {
            let r = wl.lock().unwrap().exec(s, worker);
            if r.is_err() {
                // The workload propagates mid-txn errors without cleanup.
                s.abort();
            }
            r
        }
    };
    retry_txn(policy, backoff, stats, &mut attempt, |units| {
        backoff_hist.record(units);
        mem.exec(units);
    })
}

#[allow(clippy::too_many_arguments)]
fn manifest_json(
    cfg: &ChaosCfg,
    plan: &FaultPlan,
    window: WindowSpec,
    outcomes: &ChaosOutcomes,
    retry_hist: &Histogram,
    backoff_hist: &Histogram,
    digests: &[u64],
    table_digest: u64,
    lost: u64,
    phantom: u64,
    faults_fired: u64,
    span_count: u64,
    fired: &[faults::Fired],
    m: &Measurement,
) -> Json {
    let r = &outcomes.retry;
    let mut site_counts: Vec<(&'static str, u64)> = Vec::new();
    for f in fired {
        match site_counts.iter_mut().find(|(s, _)| *s == f.site) {
            Some((_, c)) => *c += 1,
            None => site_counts.push((f.site, 1)),
        }
    }
    Json::obj(vec![
        ("kind", Json::str("chaos-manifest")),
        ("system", Json::str(cfg.system.label())),
        ("system_cli", Json::str(system_cli(cfg.system))),
        ("cc", Json::str(cfg.cc.label())),
        ("workload", Json::str(&cfg.workload_name)),
        ("workers", Json::u64(cfg.workers as u64)),
        ("sockets", Json::u64(cfg.sockets.max(1) as u64)),
        (
            "window",
            Json::obj(vec![
                ("warmup", Json::u64(window.warmup)),
                ("measured", Json::u64(window.measured)),
                ("reps", Json::u64(u64::from(window.reps))),
            ]),
        ),
        ("plan", plan.to_json()),
        (
            "outcomes",
            Json::obj(vec![
                ("commits", Json::u64(r.commits)),
                ("retries_total", Json::u64(r.retries())),
                ("gave_up", Json::u64(r.gave_up)),
                ("conflict_retries", Json::u64(r.conflict_retries)),
                ("abort_retries", Json::u64(r.abort_retries)),
                ("latch_timeouts", Json::u64(r.latch_timeouts)),
                ("validation_aborts", Json::u64(r.validation_aborts)),
                ("deadlock_victims", Json::u64(r.deadlock_victims)),
                ("log_failures", Json::u64(r.log_failures)),
                ("backoff_units", Json::u64(r.backoff_units)),
                ("driver_conflicts", Json::u64(outcomes.driver_conflicts)),
                ("driver_aborts", Json::u64(outcomes.driver_aborts)),
                ("poisons", Json::u64(outcomes.poisons)),
                ("reopens", Json::u64(outcomes.reopens)),
                ("offline_events", Json::u64(outcomes.offline_events)),
                ("offline_txns", Json::u64(outcomes.offline_txns)),
                ("ambiguous_commits", Json::u64(outcomes.ambiguous_commits)),
            ]),
        ),
        ("retry_hist", retry_hist.to_json()),
        ("backoff_hist", backoff_hist.to_json()),
        (
            "fired_by_site",
            Json::Obj(
                site_counts
                    .into_iter()
                    .map(|(s, c)| (s.to_string(), Json::u64(c)))
                    .collect(),
            ),
        ),
        ("faults_fired", Json::u64(faults_fired)),
        ("spans", Json::u64(span_count)),
        ("lost_updates", Json::u64(lost)),
        ("phantom_updates", Json::u64(phantom)),
        (
            "digests",
            Json::Arr(
                digests
                    .iter()
                    .map(|d| Json::str(&format!("{d:#018x}")))
                    .collect(),
            ),
        ),
        ("table_digest", Json::str(&format!("{table_digest:#018x}"))),
        ("tps", Json::Num(m.tps)),
        ("txns", Json::u64(m.txns)),
        (
            "engine_sites_compiled",
            Json::Bool(cfg!(feature = "faults")),
        ),
    ])
}

/// Paths of the files one chaos run leaves behind.
pub struct ChaosArtifacts {
    /// The replayable JSON manifest.
    pub manifest: std::path::PathBuf,
    /// Per-span JSONL stream (same format as `bench trace`).
    pub jsonl: std::path::PathBuf,
}

/// Write the manifest plus the merged span stream under `dir`.
pub fn write_artifacts(report: &ChaosReport, cfg: &ChaosCfg, dir: &Path) -> ChaosArtifacts {
    fs::create_dir_all(dir).expect("create results dir");
    let slug = |s: &str| s.to_ascii_lowercase().replace([' ', '-'], "_");
    let base = format!(
        "chaos_{}_{}",
        slug(cfg.system.label()),
        slug(&cfg.workload_name)
    );
    let manifest = dir.join(format!("{base}.json"));
    fs::write(&manifest, report.manifest.render()).expect("write chaos manifest");
    let jsonl = dir.join(format!("{base}.jsonl"));
    export_spans(&report.spans, &jsonl);
    ChaosArtifacts { manifest, jsonl }
}

/// Write `records` as JSONL at `path` through the standard obs sink (one
/// span per line, same schema as `bench trace`).
pub fn export_spans(records: &[obs::SpanRecord], path: &Path) {
    use obs::sink::TraceSink;
    let f = fs::File::create(path).expect("create chaos span file");
    let mut sink = JsonlSink::new(Box::new(BufWriter::new(f)));
    for rec in records {
        sink.record(rec);
    }
    sink.finish();
}
