//! `bench serve` — drive an engine through the wire-protocol service
//! front end and report the service-path stall breakdown next to the
//! paper's direct-driver numbers.
//!
//! The smoke configuration is the acceptance gate for the service
//! layer: ten thousand simulated client connections multiplexed onto at
//! most eight engine sessions, every front-end stage accounted for by
//! `obs` spans (the per-phase self counts must sum exactly to the
//! measured window), admission control observably shedding, and
//! throughput within 25% of the matched direct-session driver.

use std::fmt::Write as _;

use service::{AdmissionPolicy, ServeReport, ServiceBuilder, WorkloadFactory};

use crate::WorkloadCfg;
use engines::SystemKind;
use microarch::WindowSpec;

/// Configuration for one serve run.
#[derive(Clone, Debug)]
pub struct ServeCfg {
    /// Engine under service.
    pub system: SystemKind,
    /// Workload executed per admitted request.
    pub workload: WorkloadCfg,
    /// Workload CLI name; doubles as the prepared-statement name the
    /// clients Parse.
    pub workload_name: String,
    /// Simulated client connections.
    pub connections: usize,
    /// Engine sessions in the pool (== simulated cores).
    pub pool: usize,
    /// Admission queue cap per core.
    pub queue_cap: usize,
    /// Executions coalesced per core per turn.
    pub batch: usize,
    /// Connections polled per core per turn.
    pub intake: usize,
    /// Client jitter seed.
    pub seed: u64,
    /// Pinned smoke window + acceptance thresholds.
    pub smoke: bool,
}

impl ServeCfg {
    /// Defaults matching the service builder's.
    pub fn new(system: SystemKind, workload: WorkloadCfg, name: &str) -> Self {
        ServeCfg {
            system,
            workload,
            workload_name: name.to_string(),
            connections: 10_000,
            pool: 4,
            queue_cap: 64,
            batch: 4,
            intake: 8,
            seed: 0xC0FFEE,
            smoke: false,
        }
    }
}

/// Execute the run. Smoke pins the window (ignoring `IMOLTP_SCALE`) so
/// the ≥10k-connection coverage guarantee holds regardless of CI's
/// scale-down; normal runs scale like every other bench command.
pub fn run(cfg: &ServeCfg) -> ServeReport {
    let wl = cfg.workload.clone();
    let factory: WorkloadFactory = Box::new(move || wl.build());
    let (window, intake) = if cfg.smoke {
        (
            WindowSpec {
                warmup: 300,
                measured: 600,
                reps: 1,
            },
            cfg.intake.max(12),
        )
    } else {
        (
            WindowSpec {
                warmup: 400,
                measured: 800,
                reps: 2,
            }
            .scaled(crate::scale_factor()),
            cfg.intake,
        )
    };
    ServiceBuilder::new(cfg.system, cfg.workload_name.as_str(), factory)
        .connections(cfg.connections)
        .pool(cfg.pool)
        .admission(AdmissionPolicy {
            queue_cap: cfg.queue_cap,
        })
        .batch(cfg.batch)
        .intake(intake)
        .seed(cfg.seed)
        .window(window)
        .build()
        .run()
}

/// Human-readable report: run summary, the per-stage breakdown, and the
/// direct-driver comparison.
pub fn render(r: &ServeReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== service path: {} / {} / {} connections on {} session(s) ==",
        r.system.label(),
        r.stmt,
        r.connections,
        r.sessions
    );
    let _ = writeln!(
        out,
        "turns {}  tps(served) {:.0}  ipc {:.2}  frontend {:.1}%",
        r.measurement.txns,
        r.tps_served,
        r.measurement.ipc,
        frontend_pct(r)
    );
    let _ = writeln!(
        out,
        "executed {}  committed {}  errors {}  starved turns {}",
        r.executed, r.committed, r.exec_errors, r.starved_turns
    );
    let _ = writeln!(
        out,
        "admitted {}  shed {}  queue high-water {}/{}",
        r.admitted, r.shed, r.queue_high_water, r.queue_cap
    );
    let _ = writeln!(
        out,
        "pool: checkouts {}  busy {}  reopens {}",
        r.pool.checkouts, r.pool.busy, r.pool.reopens
    );
    let _ = writeln!(
        out,
        "conns served {}  conns committed {}  digest {:#018x}",
        r.conns_served, r.conns_committed, r.digest
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>12} {:>13} {:>7}",
        "stage", "spans", "instr", "cycles", "share"
    );
    for s in r.stage_rows() {
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>12} {:>13.0} {:>6.1}%",
            format!("{}:{}", s.engine, s.phase),
            s.count,
            s.instructions,
            s.cycles,
            s.share * 100.0
        );
    }
    let _ = writeln!(
        out,
        "unattributed instructions: {}",
        r.unattributed_instructions
    );
    if let (Some(d), Some(ratio)) = (&r.direct, r.tps_ratio()) {
        let _ = writeln!(
            out,
            "direct driver: tps {:.0}  ipc {:.2}  -> service at {:.0}% of direct",
            d.tps,
            d.ipc,
            ratio * 100.0
        );
    }
    out
}

/// The per-stage breakdown as CSV (one row per span phase, plus the
/// direct-driver total for context).
pub fn to_csv(r: &ServeReport) -> String {
    let mut out = String::from("engine,phase,spans,instructions,cycles,share\n");
    for s in r.stage_rows() {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.0},{:.4}",
            s.engine, s.phase, s.count, s.instructions, s.cycles, s.share
        );
    }
    if let Some(d) = &r.direct {
        let _ = writeln!(
            out,
            "direct,total,{},{},{:.0},1.0000",
            d.txns, d.counts.instructions, d.cycles
        );
    }
    out
}

fn frontend_pct(r: &ServeReport) -> f64 {
    r.frontend_share() * 100.0
}

/// The acceptance gate behind `bench serve --smoke`.
pub fn smoke_check(r: &ServeReport) -> Result<(), String> {
    if r.connections < 10_000 {
        return Err(format!(
            "smoke must drive >= 10000 connections, got {}",
            r.connections
        ));
    }
    if r.sessions > 8 {
        return Err(format!(
            "smoke must stay on <= 8 engine sessions, got {}",
            r.sessions
        ));
    }
    if r.unattributed_instructions != 0 {
        return Err(format!(
            "exactness violated: {} instructions outside all service-path spans",
            r.unattributed_instructions
        ));
    }
    if r.conns_served < r.connections as u64 {
        return Err(format!(
            "only {}/{} connections were ever served",
            r.conns_served, r.connections
        ));
    }
    if r.committed == 0 {
        return Err("no transaction committed through the service path".into());
    }
    if r.shed == 0 {
        return Err("admission control never shed; the smoke is not loading the queue".into());
    }
    if r.starved_turns != 0 {
        return Err(format!(
            "{} measured turns ran under-batch; throughput comparison is invalid",
            r.starved_turns
        ));
    }
    for phase in ["parse", "dispatch", "respond"] {
        if !r
            .stage_rows()
            .iter()
            .any(|s| s.engine == "svc" && s.phase == phase)
        {
            return Err(format!("missing svc/{phase} stage in the breakdown"));
        }
    }
    match r.tps_ratio() {
        None => return Err("smoke requires the direct-driver comparison".into()),
        Some(ratio) if ratio < 0.75 => {
            return Err(format!(
                "service path at {:.0}% of the direct driver (needs >= 75%)",
                ratio * 100.0
            ));
        }
        Some(_) => {}
    }
    Ok(())
}
