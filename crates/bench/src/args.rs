//! Shared CLI argument parsing for the bench binaries.
//!
//! Every subcommand used to hand-roll its own flag loop, and most of
//! them silently skipped flags they did not recognize — a typo like
//! `--smoek` ran the full (hour-long) window instead of failing fast.
//! This module is the one parser they all share now: a subcommand
//! declares its flags as [`Spec`]s, and anything unrecognized is a hard
//! error the binary turns into usage + exit 2.

use std::str::FromStr;

/// How many tokens a flag consumes after its own name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arity {
    /// Boolean flag, e.g. `--smoke`.
    Flag,
    /// Requires a value, e.g. `--out results/x.csv`.
    Value,
    /// Optional value: consumes the next token only if it is not a
    /// flag, e.g. `--flame [component]`.
    OptValue,
}

/// One accepted flag.
#[derive(Clone, Copy, Debug)]
pub struct Spec {
    /// Flag name including the leading dashes (`"--smoke"`).
    pub name: &'static str,
    /// Whether/how it takes a value.
    pub arity: Arity,
}

impl Spec {
    /// A boolean flag.
    pub const fn flag(name: &'static str) -> Spec {
        Spec {
            name,
            arity: Arity::Flag,
        }
    }

    /// A flag with a required value.
    pub const fn value(name: &'static str) -> Spec {
        Spec {
            name,
            arity: Arity::Value,
        }
    }

    /// A flag with an optional value.
    pub const fn opt_value(name: &'static str) -> Spec {
        Spec {
            name,
            arity: Arity::OptValue,
        }
    }
}

/// Parsed arguments: positionals in order plus flag occurrences.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Non-flag tokens, in order.
    pub positionals: Vec<String>,
    flags: Vec<(&'static str, Option<String>)>,
}

impl Parsed {
    /// Whether `name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    /// The (last) value given for `name`, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Parse the value of `name` as `T`; `what` names the quantity in
    /// the error message. `Ok(None)` when the flag was absent.
    pub fn parsed<T: FromStr>(&self, name: &str, what: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("bad {what}: {v}")),
        }
    }

    /// The nth positional.
    pub fn pos(&self, n: usize) -> Option<&str> {
        self.positionals.get(n).map(String::as_str)
    }
}

/// Parse `args` (everything after the subcommand) against `specs`.
/// Unknown `--flags` and missing required values are errors; the caller
/// prints the message and exits via its usage text. `cmd` is the full
/// command name for the error message (e.g. `"bench trace"`).
pub fn parse(cmd: &str, args: &[String], specs: &[Spec]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(spec) = specs.iter().find(|s| s.name == a) {
            let value = match spec.arity {
                Arity::Flag => None,
                Arity::Value => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("{} requires a value", spec.name))?;
                    i += 1;
                    Some(v.clone())
                }
                Arity::OptValue => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(v) => {
                        i += 1;
                        Some(v.clone())
                    }
                    None => None,
                },
            };
            out.flags.push((spec.name, value));
        } else if a.starts_with("--") {
            return Err(format!("unknown flag for `{cmd}`: {a}"));
        } else {
            out.positionals.push(a.clone());
        }
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn positionals_flags_and_values() {
        let p = parse(
            "bench chaos",
            &argv(&["voltdb", "micro", "--seed", "7", "--smoke"]),
            &[Spec::value("--seed"), Spec::flag("--smoke")],
        )
        .unwrap();
        assert_eq!(p.positionals, vec!["voltdb", "micro"]);
        assert!(p.has("--smoke"));
        assert_eq!(p.parsed::<u64>("--seed", "seed").unwrap(), Some(7));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse(
            "bench metrics",
            &argv(&["--smoek"]),
            &[Spec::flag("--smoke")],
        )
        .unwrap_err();
        assert!(err.contains("--smoek"), "{err}");
        assert!(err.contains("bench metrics"), "{err}");
    }

    #[test]
    fn missing_required_value_is_an_error() {
        let err = parse("perf", &argv(&["--out"]), &[Spec::value("--out")]).unwrap_err();
        assert!(err.contains("--out requires a value"), "{err}");
    }

    #[test]
    fn optional_value_takes_a_word_but_not_a_flag() {
        let specs = [Spec::opt_value("--flame"), Spec::flag("--smoke")];
        let p = parse("trace", &argv(&["--flame", "l1i"]), &specs).unwrap();
        assert_eq!(p.value("--flame"), Some("l1i"));
        let p = parse("trace", &argv(&["--flame", "--smoke"]), &specs).unwrap();
        assert!(p.has("--flame"));
        assert_eq!(p.value("--flame"), None);
        assert!(p.has("--smoke"));
    }

    #[test]
    fn bad_numeric_value_reports_the_quantity() {
        let p = parse("chaos", &argv(&["--seed", "abc"]), &[Spec::value("--seed")]).unwrap();
        let err = p.parsed::<u64>("--seed", "seed").unwrap_err();
        assert_eq!(err, "bad seed: abc");
    }
}
