//! `bench` — ad-hoc benchmarking front-end.
//!
//! ```text
//! bench trace <system> <workload> [workers] [--flame [component]]
//!                                             # traced run + Perfetto/JSONL export
//!                                             # --flame adds a stall-weighted collapsed-stack
//!                                             # file (component: total|instr|data|l1i|...)
//! bench metrics [system] [workload] [--smoke] # metrics-registry run + Prometheus/JSON export
//! bench perf [--smoke] [--check <baseline>]   # simulator micro-benchmark -> results/perf.json
//! bench chaos <system> <workload> [--seed N] [--fault-rate R] [--workers W] [--sockets S]
//!             [--smoke] [--plan <manifest.json>] [--out <dir>]
//!                                             # fault-injection run + replayable manifest
//! bench recover <system> <workload> [--seed N] [--kill-at SLOT] [--ckpt-start SLOT]
//!             [--epoch E] [--workers W] [--smoke] [--plan <manifest.json>] [--out <dir>]
//!                                             # durable run + deterministic kill + crash recovery
//! bench recover --sweep [--smoke] [--out <path>]
//!                                             # engines x kill points x epochs -> CSV
//! bench cc-grid [--smoke] [--out <path>]      # CC protocol x contention sweep -> CSV
//! bench islands [--smoke] [--out <path>]      # NUMA placement x cross-socket mix grid -> CSV
//! bench serve [system] [workload] [--connections N] [--pool P] [--queue-cap Q]
//!             [--batch B] [--intake I] [--seed S] [--smoke] [--out <csv>]
//!                                             # wire-protocol service front end run
//! ```
//!
//! Systems: shore-mt, dbmsd, voltdb, hyper, dbmsm, dbmsm-interp,
//! dbmsm-btree. Workloads: micro, micro-rw, tpcb, tpcc, tpce.
//! Set `IMOLTP_SCALE=<f64>` to scale measurement windows (e.g. `0.2`).
//!
//! All subcommands share one flag parser: an unrecognized `--flag`
//! prints the usage text and exits 2 instead of being silently ignored.

use std::path::PathBuf;

use bench::args::{self, Parsed, Spec};
use bench::trace;

/// Parse the subcommand's arguments or die with usage.
fn parse_or_usage(cmd: &str, argv: &[String], specs: &[Spec]) -> Parsed {
    args::parse(&format!("bench {cmd}"), argv, specs).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage(2);
    })
}

/// Reject positionals beyond the first `max` (typos like a misspelled
/// flag without dashes would otherwise vanish silently).
fn limit_positionals(p: &Parsed, max: usize, cmd: &str) {
    if p.positionals.len() > max {
        eprintln!(
            "unexpected argument for `bench {cmd}`: {}",
            p.positionals[max]
        );
        usage(2);
    }
}

fn parse_system_or_die(s: &str) -> engines::SystemKind {
    trace::parse_system(s).unwrap_or_else(|| {
        eprintln!("unknown system: {s}");
        usage(2);
    })
}

fn parse_workload_or_die(s: &str) -> bench::WorkloadCfg {
    trace::parse_workload(s).unwrap_or_else(|| {
        eprintln!("unknown workload: {s}");
        usage(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rest = if args.len() > 2 { &args[2..] } else { &[] };
    match args.get(1).map(String::as_str) {
        Some("trace") => run_trace(rest),
        Some("metrics") => run_metrics(rest),
        Some("perf") => run_perf(rest),
        Some("chaos") => run_chaos(rest),
        Some("recover") => run_recover(rest),
        Some("cc-grid") => run_ccgrid(rest),
        Some("islands") => run_islands(rest),
        Some("serve") => run_serve(rest),
        Some("help") | None => usage(0),
        Some(other) => {
            eprintln!("unknown subcommand: {other}");
            usage(2);
        }
    }
}

fn run_trace(argv: &[String]) {
    let p = parse_or_usage("trace", argv, &[Spec::opt_value("--flame")]);
    limit_positionals(&p, 3, "trace");
    let (Some(sys_arg), Some(wl_arg)) = (p.pos(0), p.pos(1)) else {
        usage(2);
    };
    let system = parse_system_or_die(sys_arg);
    let workload = parse_workload_or_die(wl_arg);
    let workers: usize = match p.pos(2) {
        Some(n) => match n.parse() {
            // The simulated machine models at most 64 cores.
            Ok(w) if (1..=64).contains(&w) => w,
            _ => {
                eprintln!("bad worker count: {n} (expected 1..=64)");
                usage(2);
            }
        },
        None => 1,
    };
    let flame = p.has("--flame").then(|| match p.value("--flame") {
        Some(name) => obs::flame::StallComponent::parse(name).unwrap_or_else(|| {
            eprintln!("bad stall component: {name} (total|instr|data|l1i|l2i|llc-i|l1d|l2d|llc-d)");
            usage(2);
        }),
        None => obs::flame::StallComponent::Total,
    });
    let out_dir = repo_root().join("results");
    let art = trace::run_trace_flame(system, &workload, wl_arg, &out_dir, workers, flame);
    print!(
        "{}",
        trace::render(
            &art.measurement,
            &format!("{} / {} / {workers} worker(s)", system.label(), wl_arg)
        )
    );
    println!(
        "perfetto: {} (load in ui.perfetto.dev)",
        art.perfetto.display()
    );
    println!("jsonl:    {}", art.jsonl.display());
    if let (Some(folded), Some(total)) = (&art.folded, art.flame_total) {
        println!(
            "folded:   {} ({} stall cycles; feed to flamegraph.pl/inferno/speedscope)",
            folded.display(),
            total
        );
    }
}

fn run_metrics(argv: &[String]) {
    let p = parse_or_usage("metrics", argv, &[Spec::flag("--smoke")]);
    limit_positionals(&p, 2, "metrics");
    let system = match p.pos(0) {
        Some(s) => parse_system_or_die(s),
        None => engines::SystemKind::VoltDb,
    };
    let workload = match p.pos(1) {
        Some(w) => parse_workload_or_die(w),
        None => trace::parse_workload("micro").unwrap(),
    };
    let mut cfg = bench::metrics_report::MetricsCfg::new(system, workload);
    cfg.smoke = p.has("--smoke");
    if cfg.smoke {
        cfg.report_every = 64;
    }
    let r = bench::metrics_report::run(&cfg);
    for line in &r.periodic {
        println!("{line}");
    }
    let out_dir = repo_root().join("results");
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let prom = out_dir.join("metrics.prom");
    let json = out_dir.join("metrics.json");
    std::fs::write(&prom, &r.prometheus).expect("write metrics.prom");
    std::fs::write(&json, &r.json).expect("write metrics.json");
    println!(
        "txns {}  tps {:.0}  ipc {:.2}",
        r.measurement.txns, r.measurement.tps, r.measurement.ipc
    );
    println!("prometheus: {}", prom.display());
    println!("json:       {}", json.display());
    if let Err(e) = bench::metrics_report::smoke_check(&r, system.label()) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
    println!("metrics smoke OK");
}

fn run_perf(argv: &[String]) {
    let p = parse_or_usage(
        "perf",
        argv,
        &[
            Spec::flag("--smoke"),
            Spec::value("--check"),
            Spec::value("--out"),
        ],
    );
    limit_positionals(&p, 0, "perf");
    let smoke = p.has("--smoke");
    let check = p.value("--check").map(PathBuf::from);
    let out = p
        .value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("results").join("perf.json"));
    let report = bench::perf::run(smoke);
    print!("{}", report.render());
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, report.to_json()).expect("write perf.json");
    println!("wrote {}", out.display());
    if let Some(baseline) = check {
        // CI gate: fail on a >30% throughput regression vs the
        // checked-in baseline.
        let bad = bench::perf::regressions(&report, &baseline, 0.7);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("perf regression: {b}");
            }
            std::process::exit(1);
        }
        println!("no perf regressions vs {}", baseline.display());
    }
}

fn run_ccgrid(argv: &[String]) {
    let p = parse_or_usage(
        "cc-grid",
        argv,
        &[Spec::flag("--smoke"), Spec::value("--out")],
    );
    limit_positionals(&p, 0, "cc-grid");
    let smoke = p.has("--smoke");
    // Without --out, smoke runs write beside the exemplar rather than
    // over it: the committed cc_grid.csv is the full grid.
    let default_name = if smoke {
        "cc_grid_smoke.csv"
    } else {
        "cc_grid.csv"
    };
    let out = p
        .value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("results").join(default_name));
    let cfg = if smoke {
        bench::ccgrid::CcGridCfg::smoke()
    } else {
        bench::ccgrid::CcGridCfg::full()
    };
    let rows = bench::ccgrid::run(&cfg);
    print!("{}", bench::ccgrid::render(&rows));
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, bench::ccgrid::to_csv(&rows)).expect("write cc_grid.csv");
    println!("wrote {}", out.display());
    if let Err(e) = bench::ccgrid::smoke_check(&rows) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
    println!("cc-grid OK ({} cells)", rows.len());
}

/// `bench islands`: the multi-socket deployment grid (placement x
/// local/cross-socket mix x engine). Writes the CSV and exits nonzero if
/// the Hardware Islands ordering does not hold.
fn run_islands(argv: &[String]) {
    let p = parse_or_usage(
        "islands",
        argv,
        &[Spec::flag("--smoke"), Spec::value("--out")],
    );
    limit_positionals(&p, 0, "islands");
    let smoke = p.has("--smoke");
    let rows = bench::islands::islands_grid(smoke);
    print!("{}", bench::islands::render(&rows));
    // Without --out, smoke runs write beside the exemplar rather than
    // over it: the committed islands.csv is the full grid.
    let default_name = if smoke {
        "islands_smoke.csv"
    } else {
        "islands.csv"
    };
    let out = p
        .value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("results").join(default_name));
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, bench::islands::render_csv(&rows)).expect("write islands csv");
    println!("wrote {}", out.display());
    if let Err(e) = bench::islands::smoke_check(&rows) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
    println!("islands OK ({} cells)", rows.len());
}

/// `bench serve`: drive the wire-protocol service front end and report
/// the service-path breakdown vs the direct driver. `--smoke` pins the
/// acceptance configuration (>= 10k connections on <= 8 sessions) and
/// exits nonzero if any gate fails.
fn run_serve(argv: &[String]) {
    let p = parse_or_usage(
        "serve",
        argv,
        &[
            Spec::value("--connections"),
            Spec::value("--pool"),
            Spec::value("--queue-cap"),
            Spec::value("--batch"),
            Spec::value("--intake"),
            Spec::value("--seed"),
            Spec::flag("--smoke"),
            Spec::value("--out"),
        ],
    );
    limit_positionals(&p, 2, "serve");
    let system = match p.pos(0) {
        Some(s) => parse_system_or_die(s),
        None => engines::SystemKind::VoltDb,
    };
    let wl_name = p.pos(1).unwrap_or("micro").to_string();
    let workload = parse_workload_or_die(&wl_name);

    let numeric = |name: &str, what: &str| {
        p.parsed::<usize>(name, what).unwrap_or_else(|e| {
            eprintln!("{e}");
            usage(2);
        })
    };
    let mut cfg = bench::serve::ServeCfg::new(system, workload, &wl_name);
    cfg.smoke = p.has("--smoke");
    if let Some(n) = numeric("--connections", "connection count") {
        cfg.connections = n;
    }
    if let Some(n) = numeric("--pool", "pool size") {
        if !(1..=64).contains(&n) {
            eprintln!("bad pool size: {n} (expected 1..=64)");
            usage(2);
        }
        cfg.pool = n;
    }
    if let Some(n) = numeric("--queue-cap", "queue cap") {
        cfg.queue_cap = n.max(1);
    }
    if let Some(n) = numeric("--batch", "batch size") {
        cfg.batch = n.max(1);
    }
    if let Some(n) = numeric("--intake", "intake") {
        cfg.intake = n.max(1);
    }
    if let Some(seed) = p.parsed::<u64>("--seed", "seed").unwrap_or_else(|e| {
        eprintln!("{e}");
        usage(2);
    }) {
        cfg.seed = seed;
    }
    if cfg.smoke {
        // The acceptance gate is defined at exactly this scale; honor
        // explicit overrides only if they stay inside it.
        cfg.connections = cfg.connections.max(10_000);
        if cfg.pool > 8 {
            eprintln!(
                "--smoke requires a pool of <= 8 sessions (got {})",
                cfg.pool
            );
            usage(2);
        }
    }

    let report = bench::serve::run(&cfg);
    print!("{}", bench::serve::render(&report));
    let out = p
        .value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("results").join("serve_breakdown.csv"));
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, bench::serve::to_csv(&report)).expect("write serve_breakdown.csv");
    println!("wrote {}", out.display());
    if cfg.smoke {
        if let Err(e) = bench::serve::smoke_check(&report) {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
        println!("serve smoke OK");
    }
}

/// `bench chaos`: one fault-injection run under the retry/backoff policy,
/// verified against the lost-update oracle; exits nonzero on any oracle
/// violation (or digest mismatch when replaying a manifest).
fn run_chaos(argv: &[String]) -> ! {
    let p = parse_or_usage(
        "chaos",
        argv,
        &[
            Spec::value("--seed"),
            Spec::value("--fault-rate"),
            Spec::value("--workers"),
            Spec::value("--sockets"),
            Spec::value("--cc"),
            Spec::value("--plan"),
            Spec::value("--out"),
            Spec::flag("--smoke"),
        ],
    );
    limit_positionals(&p, 2, "chaos");

    // A replayed manifest supplies every knob; explicit CLI args win.
    let replay = p.value("--plan").map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read plan {path}: {e}");
            usage(2);
        });
        obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad plan JSON in {path}: {e}");
            usage(2);
        })
    });
    let rstr = |key: &str| {
        replay
            .as_ref()
            .and_then(|m| m.get(key))
            .and_then(|v| v.as_str())
            .map(String::from)
    };
    let rnum = |key: &str| {
        replay
            .as_ref()
            .and_then(|m| m.get(key))
            .and_then(|v| v.as_f64())
    };

    let sys_arg = p
        .pos(0)
        .map(String::from)
        .or_else(|| rstr("system_cli").or_else(|| rstr("system")))
        .unwrap_or_else(|| usage(2));
    let wl_arg = p
        .pos(1)
        .map(String::from)
        .or_else(|| rstr("workload"))
        .unwrap_or_else(|| usage(2));
    let system = parse_system_or_die(&sys_arg);
    let workload = parse_workload_or_die(&wl_arg);

    let mut cfg = bench::chaos::ChaosCfg::new(system, workload, &wl_arg);
    if let Some(label) = rstr("cc") {
        cfg.cc = engines::CcPolicy::parse(&label).unwrap_or_else(|| {
            eprintln!("bad cc protocol in plan: {label}");
            usage(2);
        });
    }
    if let Some(m) = &replay {
        cfg.plan_override = Some(faults::FaultPlan::from_json(m).unwrap_or_else(|e| {
            eprintln!("bad fault plan: {e}");
            usage(2);
        }));
        cfg.seed = cfg.plan_override.as_ref().unwrap().seed;
        cfg.fault_rate = cfg.plan_override.as_ref().unwrap().rate;
        if let Some(w) = rnum("workers") {
            cfg.workers = w as usize;
        }
        // Tolerant parse: manifests recorded before the multi-socket
        // harness have no "sockets" field and replay on one socket.
        if let Some(s) = rnum("sockets") {
            cfg.sockets = (s as usize).max(1);
        }
        if let Some(win) = m.get("window") {
            let f = |k: &str| win.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
            cfg.window = Some(microarch::WindowSpec {
                warmup: f("warmup"),
                measured: f("measured"),
                reps: (f("reps") as u32).max(1),
            });
        }
    }
    if let Some(seed) = p.parsed::<u64>("--seed", "seed").unwrap_or_else(|e| {
        eprintln!("{e}");
        usage(2);
    }) {
        cfg.seed = seed;
        cfg.plan_override = None; // explicit knobs rebuild the plan
    }
    if let Some(rate) = p.value("--fault-rate") {
        cfg.fault_rate = rate.parse().unwrap_or_else(|_| {
            eprintln!("bad fault rate: {rate}");
            usage(2);
        });
        if !(0.0..=1.0).contains(&cfg.fault_rate) {
            eprintln!("bad fault rate: {rate} (expected 0..=1)");
            usage(2);
        }
        cfg.plan_override = None;
    }
    if let Some(w) = p
        .parsed::<u64>("--workers", "worker count")
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            usage(2);
        })
    {
        if !(1..=64).contains(&w) {
            eprintln!("bad worker count: {w} (expected 1..=64)");
            usage(2);
        }
        cfg.workers = w as usize;
    }
    if let Some(s) = p
        .parsed::<u64>("--sockets", "socket count")
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            usage(2);
        })
    {
        if !(1..=8).contains(&s) {
            eprintln!("bad socket count: {s} (expected 1..=8)");
            usage(2);
        }
        cfg.sockets = s as usize;
    }
    if !cfg.workers.is_multiple_of(cfg.sockets) {
        eprintln!(
            "worker count ({}) must divide evenly across {} socket(s)",
            cfg.workers, cfg.sockets
        );
        usage(2);
    }
    if let Some(label) = p.value("--cc") {
        cfg.cc = engines::CcPolicy::parse(label).unwrap_or_else(|| {
            eprintln!(
                "bad cc protocol: {label} (default|2pl-nowait|2pl-waitdie|part-serial|occ|mvto)"
            );
            usage(2);
        });
    }
    if p.has("--smoke") {
        cfg.window = Some(microarch::WindowSpec {
            warmup: 40,
            measured: 120,
            reps: 1,
        });
    }

    let report = bench::chaos::run(&cfg);
    let out_dir = p
        .value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("results"));
    let art = bench::chaos::write_artifacts(&report, &cfg, &out_dir);

    let r = &report.outcomes.retry;
    println!(
        "chaos: {} / {} / {} worker(s), seed {}, rate {}",
        system.label(),
        wl_arg,
        cfg.workers,
        cfg.seed,
        cfg.fault_rate
    );
    println!(
        "  txns {}  commits {}  retries {} (conflict {}, abort {})  gave_up {}",
        report.measurement.txns,
        r.commits,
        r.retries(),
        r.conflict_retries,
        r.abort_retries,
        r.gave_up
    );
    println!(
        "  latch_timeouts {}  log_failures {}  backoff_units {}",
        r.latch_timeouts, r.log_failures, r.backoff_units
    );
    println!(
        "  poisons {}  reopens {}  offline {} ({} txn slots)  ambiguous commits {}",
        report.outcomes.poisons,
        report.outcomes.reopens,
        report.outcomes.offline_events,
        report.outcomes.offline_txns,
        report.outcomes.ambiguous_commits
    );
    println!(
        "  faults fired {}  attempts p50/p95 {}/{}",
        report.faults_fired,
        report.retry_hist.quantile(0.5),
        report.retry_hist.quantile(0.95)
    );
    for (core, d) in report.digests.iter().enumerate() {
        println!("  core {core} digest {d:#018x}");
    }
    println!("  table digest {:#018x}", report.table_digest);
    println!(
        "  lost updates {}  phantom updates {}",
        report.lost_updates, report.phantom_updates
    );
    println!("manifest: {}", art.manifest.display());
    println!("jsonl:    {}", art.jsonl.display());

    let mut failed = false;
    if !report.consistent() {
        eprintln!("FAIL: oracle violated (lost or phantom updates)");
        failed = true;
    }
    // Digest comparison only applies to a faithful replay — overriding
    // the seed or rate on the CLI deliberately departs from the manifest.
    if let Some(m) = replay.as_ref().filter(|_| cfg.plan_override.is_some()) {
        // Replays must reproduce the original run bit for bit.
        let want: Vec<String> = m
            .get("digests")
            .and_then(|v| v.as_arr())
            .map(|a| {
                a.iter()
                    .filter_map(|d| d.as_str().map(String::from))
                    .collect()
            })
            .unwrap_or_default();
        let got: Vec<String> = report
            .digests
            .iter()
            .map(|d| format!("{d:#018x}"))
            .collect();
        if !want.is_empty() && want != got {
            eprintln!("FAIL: per-core digests differ from the replayed manifest");
            failed = true;
        }
        if let Some(want_table) = m.get("table_digest").and_then(|v| v.as_str()) {
            if want_table != format!("{:#018x}", report.table_digest) {
                eprintln!("FAIL: table digest differs from the replayed manifest");
                failed = true;
            }
        }
        if !failed {
            println!("replay matches the manifest");
        }
    }
    std::process::exit(i32::from(failed));
}

/// `bench recover`: one durable run with a deterministic kill, crash
/// recovery from fuzzy checkpoint + durable log tail, and verification
/// that exactly the acknowledged work survives. `--sweep` runs the
/// nightly engines x kill-points x epochs grid to a CSV. Exits nonzero
/// on any durability-invariant violation (or digest mismatch when
/// replaying a manifest).
fn run_recover(argv: &[String]) -> ! {
    let p = parse_or_usage(
        "recover",
        argv,
        &[
            Spec::value("--seed"),
            Spec::value("--kill-at"),
            Spec::value("--ckpt-start"),
            Spec::value("--epoch"),
            Spec::value("--workers"),
            Spec::value("--plan"),
            Spec::value("--out"),
            Spec::flag("--smoke"),
            Spec::flag("--sweep"),
        ],
    );
    limit_positionals(&p, 2, "recover");

    if p.has("--sweep") {
        let smoke = p.has("--smoke");
        let rows = bench::recover::sweep(smoke);
        print!("{}", bench::recover::render(&rows));
        let default_name = if smoke {
            "recover_smoke.csv"
        } else {
            "recover.csv"
        };
        let out = p
            .value("--out")
            .map(PathBuf::from)
            .unwrap_or_else(|| repo_root().join("results").join(default_name));
        if let Some(dir) = out.parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(&out, bench::recover::to_csv(&rows)).expect("write recover csv");
        println!("wrote {}", out.display());
        if let Err(e) = bench::recover::smoke_check(&rows) {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
        println!("recover sweep OK ({} cells)", rows.len());
        std::process::exit(0);
    }

    // A replayed manifest supplies every knob; explicit CLI args win.
    let replay = p.value("--plan").map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read plan {path}: {e}");
            usage(2);
        });
        obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad plan JSON in {path}: {e}");
            usage(2);
        })
    });
    let rstr = |key: &str| {
        replay
            .as_ref()
            .and_then(|m| m.get(key))
            .and_then(|v| v.as_str())
            .map(String::from)
    };
    let rnum = |key: &str| {
        replay
            .as_ref()
            .and_then(|m| m.get(key))
            .and_then(|v| v.as_f64())
    };

    let sys_arg = p
        .pos(0)
        .map(String::from)
        .or_else(|| rstr("system_cli").or_else(|| rstr("system")))
        .unwrap_or_else(|| usage(2));
    let wl_arg = p
        .pos(1)
        .map(String::from)
        .or_else(|| rstr("workload"))
        .unwrap_or_else(|| usage(2));
    let system = parse_system_or_die(&sys_arg);
    let workload = parse_workload_or_die(&wl_arg);

    let mut cfg = bench::recover::RecoverCfg::new(system, workload, &wl_arg);
    if let Some(m) = &replay {
        cfg.plan_override = Some(faults::FaultPlan::from_json(m).unwrap_or_else(|e| {
            eprintln!("bad fault plan: {e}");
            usage(2);
        }));
        cfg.seed = cfg.plan_override.as_ref().unwrap().seed;
        if let Some(w) = rnum("workers") {
            cfg.workers = w as usize;
        }
        if let Some(e) = rnum("epoch") {
            cfg.epoch = e as u32;
        }
        if let Some(k) = rnum("kill_at") {
            cfg.kill_at = Some(k as u64);
        }
        if let Some(c) = rnum("ckpt_start") {
            cfg.ckpt_start = Some(c as u64);
        }
        if let Some(win) = m.get("window") {
            let f = |k: &str| win.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
            cfg.window = Some(microarch::WindowSpec {
                warmup: f("warmup"),
                measured: f("measured"),
                reps: 1,
            });
        }
    }
    let numeric = |name: &str, what: &str| {
        p.parsed::<u64>(name, what).unwrap_or_else(|e| {
            eprintln!("{e}");
            usage(2);
        })
    };
    if let Some(seed) = numeric("--seed", "seed") {
        cfg.seed = seed;
        cfg.plan_override = None; // explicit knobs rebuild the plan
    }
    if let Some(k) = numeric("--kill-at", "kill slot") {
        cfg.kill_at = Some(k);
        cfg.plan_override = None;
    }
    if let Some(c) = numeric("--ckpt-start", "checkpoint start slot") {
        cfg.ckpt_start = Some(c);
    }
    if let Some(e) = numeric("--epoch", "group-commit epoch") {
        if !(1..=4096).contains(&e) {
            eprintln!("bad epoch: {e} (expected 1..=4096)");
            usage(2);
        }
        cfg.epoch = e as u32;
    }
    if let Some(w) = numeric("--workers", "worker count") {
        if !(1..=64).contains(&w) {
            eprintln!("bad worker count: {w} (expected 1..=64)");
            usage(2);
        }
        cfg.workers = w as usize;
    }
    if p.has("--smoke") {
        cfg.window = Some(microarch::WindowSpec {
            warmup: 30,
            measured: 90,
            reps: 1,
        });
    }

    let report = bench::recover::run(&cfg);
    let out_dir = p
        .value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("results"));
    let manifest = bench::recover::write_manifest(&report, &cfg, &out_dir);

    println!(
        "recover: {} / {} / {} worker(s), epoch {}, kill slot {} of {}",
        system.label(),
        wl_arg,
        cfg.workers,
        cfg.epoch,
        report.schedule.kill_at,
        report.schedule.slots
    );
    println!(
        "  crashed {}  confirmed {}  committed {}  winners {}  unfinished {}  aborted {}",
        report.crashed,
        report.confirmed,
        report.committed,
        report.recovery.winners,
        report.recovery.unfinished,
        report.recovery.aborted
    );
    for (i, c) in report.checkpoints.iter().enumerate() {
        println!(
            "  checkpoint[{i}]: complete {}  image_rows {}",
            c.complete, c.image_rows
        );
    }
    println!(
        "  redo {} (skipped {})  undo {} (skipped {})  image rows {}",
        report.recovery.redo_applied,
        report.recovery.redo_skipped,
        report.recovery.undo_applied,
        report.recovery.undo_skipped,
        report.recovery.image_rows
    );
    println!(
        "  commit latency p50/p99 {:.0}/{:.0} cycles over {} samples",
        report.latency_quantile(0.5),
        report.latency_quantile(0.99),
        report.commit_latencies.len()
    );
    for (t, d) in &report.digests {
        println!("  table {t} digest {d:#018x}");
    }
    println!(
        "  lost {}  phantom {}  aborted effects {}  digests match {}  re-recovery identical {}",
        report.lost_updates,
        report.phantom_updates,
        report.aborted_effects,
        report.digests_match,
        report.second_match
    );
    println!("manifest: {}", manifest.display());

    let mut failed = !report.consistent();
    if failed {
        eprintln!("FAIL: durability invariant violated");
    }
    // Digest comparison only applies to a faithful replay.
    if let Some(m) = replay.as_ref().filter(|_| cfg.plan_override.is_some()) {
        let want: Vec<(u64, String)> = m
            .get("digests")
            .and_then(|v| v.as_arr())
            .map(|a| {
                a.iter()
                    .filter_map(|d| {
                        Some((
                            d.get("table").and_then(|v| v.as_f64())? as u64,
                            d.get("digest").and_then(|v| v.as_str())?.to_string(),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let got: Vec<(u64, String)> = report
            .digests
            .iter()
            .map(|(t, d)| (u64::from(*t), format!("{d:#018x}")))
            .collect();
        if !want.is_empty() && want != got {
            eprintln!("FAIL: recovered digests differ from the replayed manifest");
            failed = true;
        }
        if !failed {
            println!("replay matches the manifest");
        }
    }
    std::process::exit(i32::from(failed));
}

fn usage(code: i32) -> ! {
    eprintln!("usage: bench trace <shore-mt|dbmsd|voltdb|hyper|dbmsm|dbmsm-interp|dbmsm-btree> <micro|micro-rw|tpcb|tpcc|tpce> [workers] [--flame [total|instr|data|l1i|l2i|llc-i|l1d|l2d|llc-d]]");
    eprintln!("       bench metrics [system] [workload] [--smoke]");
    eprintln!("       bench perf [--smoke] [--check <baseline.json>] [--out <path>]");
    eprintln!("       bench chaos <system> <workload> [--seed N] [--fault-rate R] [--workers W] [--cc <protocol>] [--smoke] [--plan <manifest.json>] [--out <dir>]");
    eprintln!("       bench recover <system> <workload> [--seed N] [--kill-at SLOT] [--ckpt-start SLOT] [--epoch E] [--workers W] [--smoke] [--plan <manifest.json>] [--out <dir>]");
    eprintln!(
        "       bench recover --sweep [--smoke] [--out <path>]  # engines x kill points x epochs -> CSV"
    );
    eprintln!(
        "       bench cc-grid [--smoke] [--out <path>]     # CC protocol x contention sweep -> CSV"
    );
    eprintln!(
        "       bench islands [--smoke] [--out <path>]     # NUMA placement x cross-socket mix grid -> CSV"
    );
    eprintln!("       bench serve [system] [workload] [--connections N] [--pool P] [--queue-cap Q] [--batch B] [--intake I] [--seed S] [--smoke] [--out <csv>]");
    std::process::exit(code);
}

fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}
