//! `bench` — ad-hoc benchmarking front-end.
//!
//! ```text
//! bench trace <system> <workload> [workers]   # traced run + Perfetto/JSONL export
//! bench perf [--smoke] [--check <baseline>]   # simulator micro-benchmark -> results/perf.json
//! ```
//!
//! Systems: shore-mt, dbmsd, voltdb, hyper, dbmsm, dbmsm-interp,
//! dbmsm-btree. Workloads: micro, micro-rw, tpcb, tpcc, tpce.
//! Set `IMOLTP_SCALE=<f64>` to scale measurement windows (e.g. `0.2`).

use std::path::PathBuf;

use bench::trace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("trace") => {
            let (Some(sys_arg), Some(wl_arg)) = (args.get(2), args.get(3)) else {
                usage(2);
            };
            let Some(system) = trace::parse_system(sys_arg) else {
                eprintln!("unknown system: {sys_arg}");
                usage(2);
            };
            let Some(workload) = trace::parse_workload(wl_arg) else {
                eprintln!("unknown workload: {wl_arg}");
                usage(2);
            };
            let workers: usize = match args.get(4) {
                Some(n) => match n.parse() {
                    // The simulated machine models at most 64 cores.
                    Ok(w) if (1..=64).contains(&w) => w,
                    _ => {
                        eprintln!("bad worker count: {n} (expected 1..=64)");
                        usage(2);
                    }
                },
                None => 1,
            };
            let out_dir = repo_root().join("results");
            let art = trace::run_trace_workers(system, &workload, wl_arg, &out_dir, workers);
            print!(
                "{}",
                trace::render(
                    &art.measurement,
                    &format!("{} / {} / {workers} worker(s)", system.label(), wl_arg)
                )
            );
            println!(
                "perfetto: {} (load in ui.perfetto.dev)",
                art.perfetto.display()
            );
            println!("jsonl:    {}", art.jsonl.display());
        }
        Some("perf") => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let check = args
                .iter()
                .position(|a| a == "--check")
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from);
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
                .unwrap_or_else(|| repo_root().join("results").join("perf.json"));
            let report = bench::perf::run(smoke);
            print!("{}", report.render());
            if let Some(dir) = out.parent() {
                std::fs::create_dir_all(dir).expect("create results dir");
            }
            std::fs::write(&out, report.to_json()).expect("write perf.json");
            println!("wrote {}", out.display());
            if let Some(baseline) = check {
                // CI gate: fail on a >30% throughput regression vs the
                // checked-in baseline.
                let bad = bench::perf::regressions(&report, &baseline, 0.7);
                if !bad.is_empty() {
                    for b in &bad {
                        eprintln!("perf regression: {b}");
                    }
                    std::process::exit(1);
                }
                println!("no perf regressions vs {}", baseline.display());
            }
        }
        Some("help") | None => usage(0),
        Some(other) => {
            eprintln!("unknown subcommand: {other}");
            usage(2);
        }
    }
}

fn usage(code: i32) -> ! {
    eprintln!("usage: bench trace <shore-mt|dbmsd|voltdb|hyper|dbmsm|dbmsm-interp|dbmsm-btree> <micro|micro-rw|tpcb|tpcc|tpce> [workers]");
    eprintln!("       bench perf [--smoke] [--check <baseline.json>] [--out <path>]");
    std::process::exit(code);
}

fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}
