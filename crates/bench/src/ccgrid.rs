//! `bench cc-grid`: a CCBench-style contention sweep over the pluggable
//! concurrency-control layer.
//!
//! Every cell runs the [`workloads::Contention`] workload on one engine
//! under one [`CcPolicy`], with all workers sharing one un-partitioned
//! key space (partitioned engines are built with a single partition).
//! Transactions are interleaved at **operation** granularity under the
//! deterministic lockstep gate: each worker advances one operation per
//! global turn, so transactions genuinely overlap and the protocol — not
//! the pacing — decides who aborts. Retries follow the same
//! [`RetryPolicy`]/[`Backoff`] discipline as the chaos harness, and the
//! per-protocol abort taxonomy (lock conflicts vs validation failures vs
//! deadlock victims) is reported per cell.

use std::sync::Mutex;

use engines::{SystemBuilder, SystemKind};
use microarch::{measure_workers, Measurement, Pacing, WindowSpec};
use oltp::cc::CcPolicy;
use oltp::retry::{classify, Backoff, ErrorClass, RetryPolicy};
use oltp::{OltpError, Session};
use uarch_sim::{MachineConfig, Sim};
use workloads::{CcOp, Contention, Workload};

/// One contention cell: the workload knobs every (engine, protocol) pair
/// is measured under.
#[derive(Clone, Copy, Debug)]
pub struct CellSpec {
    /// Zipfian skew in `[0, 1)`.
    pub theta: f64,
    /// Fraction of operations that are reads.
    pub read_ratio: f64,
    /// Payload bytes per row value.
    pub payload: usize,
    /// Flash-sale mode (hot-row writes).
    pub flash_sale: bool,
}

/// Per-cell retry/abort taxonomy, accumulated over the measured window.
#[derive(Clone, Copy, Debug, Default)]
pub struct CellStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions abandoned after exhausting the retry policy.
    pub gave_up: u64,
    /// Retryable failures total.
    pub retries: u64,
    /// ... of which plain lock/owner conflicts.
    pub conflicts: u64,
    /// ... of which commit-time validation failures.
    pub validation_aborts: u64,
    /// ... of which deadlock-avoidance victims.
    pub deadlock_victims: u64,
    /// Total backoff units waited.
    pub backoff_units: u64,
}

impl CellStats {
    fn merge(&mut self, o: &CellStats) {
        self.commits += o.commits;
        self.gave_up += o.gave_up;
        self.retries += o.retries;
        self.conflicts += o.conflicts;
        self.validation_aborts += o.validation_aborts;
        self.deadlock_victims += o.deadlock_victims;
        self.backoff_units += o.backoff_units;
    }
}

/// One output row of the grid.
#[derive(Clone, Debug)]
pub struct CcGridRow {
    /// Engine label.
    pub system: &'static str,
    /// Protocol label.
    pub policy: &'static str,
    /// The cell.
    pub cell: CellSpec,
    /// Worker threads.
    pub workers: usize,
    /// Committed transactions per simulated second.
    pub tps: f64,
    /// Instructions per cycle over the measured window.
    pub ipc: f64,
    /// Instructions per committed transaction.
    pub instr_per_commit: f64,
    /// Stall cycles per kilo-instruction, per miss class.
    pub spki: [f64; 6],
    /// Retry/abort taxonomy over the measured window.
    pub stats: CellStats,
}

/// Grid configuration.
pub struct CcGridCfg {
    /// Systems to sweep (default: all five).
    pub systems: Vec<SystemKind>,
    /// Protocols to sweep (default: engine default + all pluggable).
    pub policies: Vec<CcPolicy>,
    /// Cells to sweep.
    pub cells: Vec<CellSpec>,
    /// Worker threads per run.
    pub workers: usize,
    /// Table rows.
    pub rows: u64,
    /// Turns (operations) per worker: warmup/measured/reps.
    pub window: WindowSpec,
    /// Operations per transaction.
    pub ops_per_txn: u32,
    /// Workload RNG seed.
    pub seed: u64,
}

impl CcGridCfg {
    /// The full nightly grid.
    pub fn full() -> Self {
        let mut cells = Vec::new();
        for &theta in &[0.0, 0.8, 0.99] {
            for &read_ratio in &[0.9, 0.1] {
                for &payload in &[8usize, 64] {
                    cells.push(CellSpec {
                        theta,
                        read_ratio,
                        payload,
                        flash_sale: false,
                    });
                }
            }
        }
        cells.push(CellSpec {
            theta: 0.8,
            read_ratio: 0.5,
            payload: 8,
            flash_sale: true,
        });
        CcGridCfg {
            systems: SystemKind::ALL.to_vec(),
            policies: Self::all_policies(),
            cells,
            workers: 4,
            rows: 4096,
            window: WindowSpec {
                warmup: 120,
                measured: 400,
                reps: 1,
            }
            .scaled(crate::scale_factor()),
            ops_per_txn: 4,
            seed: 0xCC,
        }
    }

    /// The CI smoke grid: two cells (one skewed mix, one flash sale),
    /// three protocols, tiny windows.
    pub fn smoke() -> Self {
        CcGridCfg {
            systems: SystemKind::ALL.to_vec(),
            policies: vec![
                CcPolicy::EngineDefault,
                CcPolicy::TwoPlNoWait,
                CcPolicy::Occ,
            ],
            cells: vec![
                CellSpec {
                    theta: 0.8,
                    read_ratio: 0.5,
                    payload: 8,
                    flash_sale: false,
                },
                CellSpec {
                    theta: 0.8,
                    read_ratio: 0.5,
                    payload: 8,
                    flash_sale: true,
                },
            ],
            workers: 3,
            rows: 512,
            window: WindowSpec {
                warmup: 30,
                measured: 90,
                reps: 1,
            },
            ops_per_txn: 4,
            seed: 0xCC,
        }
    }

    /// Engine default plus every pluggable protocol.
    pub fn all_policies() -> Vec<CcPolicy> {
        let mut v = vec![CcPolicy::EngineDefault];
        v.extend(CcPolicy::ALL);
        v
    }
}

/// Per-worker transaction driver: advances one operation per call and
/// carries retry state across turns, so concurrent transactions overlap.
struct Slot {
    session: Box<dyn Session>,
    plan: Vec<CcOp>,
    next_op: usize,
    active: bool,
    attempt: u32,
    pending_backoff: u64,
    backoff: Backoff,
    stats: CellStats,
}

impl Slot {
    /// Abort the open transaction and either schedule a retry (with
    /// backoff, keeping the plan) or give up (dropping it).
    fn fail(&mut self, e: &OltpError, policy: &RetryPolicy, in_window: bool) {
        debug_assert!(
            matches!(classify(e), ErrorClass::Backoff),
            "non-retryable error in contention grid: {e}"
        );
        self.session.abort();
        self.next_op = 0;
        self.active = false;
        if in_window {
            self.stats.retries += 1;
            match e {
                OltpError::ValidationFailed { .. } => self.stats.validation_aborts += 1,
                OltpError::DeadlockVictim { .. } => self.stats.deadlock_victims += 1,
                _ => self.stats.conflicts += 1,
            }
        }
        self.attempt += 1;
        if self.attempt >= policy.max_attempts.max(1) {
            // Abandon the transaction and move on to the next plan.
            if in_window {
                self.stats.gave_up += 1;
            }
            self.plan.clear();
            self.attempt = 0;
            return;
        }
        let units = self.backoff.units(self.attempt - 1);
        self.pending_backoff = units;
        if in_window {
            self.stats.backoff_units += units;
        }
    }
}

/// Run one grid cell for one (system, policy) pair.
pub fn run_cell(
    system: SystemKind,
    policy: CcPolicy,
    cell: CellSpec,
    cfg: &CcGridCfg,
) -> CcGridRow {
    let workers = cfg.workers;
    let sim = Sim::new(MachineConfig::ivy_bridge(workers));
    // A single partition: the contention key space is shared, so every
    // worker must reach every row (partitioned engines run one island).
    let mut w = Contention::new()
        .rows(cfg.rows)
        .theta(cell.theta)
        .read_ratio(cell.read_ratio)
        .payload(cell.payload)
        .ops_per_txn(cfg.ops_per_txn)
        .flash_sale(cell.flash_sale)
        .seed(cfg.seed);
    let mut db = SystemBuilder::new(system)
        .cores(workers)
        .partitions(1)
        .cc(policy)
        .build(&sim);
    sim.offline(|| w.setup(&mut *db, workers));
    sim.warm_data();

    let retry_policy = RetryPolicy::default();
    let wl = Mutex::new(w);
    let per_worker: Vec<Mutex<CellStats>> = (0..workers)
        .map(|_| Mutex::new(CellStats::default()))
        .collect();
    let cores: Vec<usize> = (0..workers).collect();
    let warmup_turns = cfg.window.warmup * workers as u64;
    let db = &*db;
    let wl = &wl;
    let per_worker = &per_worker;
    let retry_policy = &retry_policy;

    let m = measure_workers(&sim, &cores, cfg.window, Pacing::Lockstep, |worker| {
        let mut slot = Slot {
            session: db.session(worker),
            plan: Vec::new(),
            next_op: 0,
            active: false,
            attempt: 0,
            pending_backoff: 0,
            backoff: Backoff::new(*retry_policy, 0xBAC0 ^ worker as u64),
            stats: CellStats::default(),
        };
        let mem = sim.mem(worker);
        move |t| {
            let in_window = t >= warmup_turns;
            // A backoff pause occupies this turn (spin instructions), so
            // the conflicting peer gets to make progress meanwhile.
            if slot.pending_backoff > 0 {
                mem.exec(slot.pending_backoff);
                slot.pending_backoff = 0;
                return;
            }
            if !slot.active {
                if slot.plan.is_empty() {
                    slot.plan = wl.lock().unwrap().plan_txn(worker);
                }
                slot.session.begin();
                slot.active = true;
                slot.next_op = 0;
            }
            if slot.next_op < slot.plan.len() {
                let op = slot.plan[slot.next_op];
                let r = wl.lock().unwrap().apply(slot.session.as_mut(), &op);
                match r {
                    Ok(()) => slot.next_op += 1,
                    Err(e) => slot.fail(&e, retry_policy, in_window),
                }
            } else {
                match slot.session.commit() {
                    Ok(()) => {
                        if in_window {
                            slot.stats.commits += 1;
                        }
                        slot.plan.clear();
                        slot.active = false;
                        slot.next_op = 0;
                        slot.attempt = 0;
                    }
                    Err(e) => slot.fail(&e, retry_policy, in_window),
                }
            }
            // Publish after every turn: the closure is never handed back.
            *per_worker[worker].lock().unwrap() = slot.stats;
        }
    });

    let mut stats = CellStats::default();
    for s in per_worker {
        stats.merge(&s.lock().unwrap());
    }
    finish_row(system, policy, cell, workers, &m, stats)
}

fn finish_row(
    system: SystemKind,
    policy: CcPolicy,
    cell: CellSpec,
    workers: usize,
    m: &Measurement,
    stats: CellStats,
) -> CcGridRow {
    // `measure_workers` counted turns (operations), not transactions, and
    // reports per-worker averages for rates while summing txns/counts:
    // rescale to aggregate committed-transaction throughput.
    let steps = m.txns.max(1) as f64;
    let commits = stats.commits as f64;
    CcGridRow {
        system: system.label(),
        policy: policy.label(),
        cell,
        workers,
        tps: m.tps * workers as f64 * (commits / steps),
        ipc: m.ipc,
        instr_per_commit: m.counts.instructions as f64 / commits.max(1.0),
        spki: m.spki,
        stats,
    }
}

/// Run the whole grid; rows come back in (system, policy, cell) order.
/// Cells run in parallel across OS threads (each owns its simulator).
pub fn run(cfg: &CcGridCfg) -> Vec<CcGridRow> {
    let mut jobs = Vec::new();
    for &system in &cfg.systems {
        for &policy in &cfg.policies {
            for &cell in &cfg.cells {
                jobs.push((system, policy, cell));
            }
        }
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let mut results: Vec<Option<CcGridRow>> = (0..jobs.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = Mutex::new(&mut results);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (system, policy, cell) = jobs[i];
                let row = run_cell(system, policy, cell, cfg);
                results_mx.lock().unwrap()[i] = Some(row);
            });
        }
    });
    results.into_iter().map(|r| r.expect("cell ran")).collect()
}

/// CSV header matching [`to_csv`] rows.
pub const CSV_HEADER: &str = "system,protocol,theta,read_ratio,payload,flash_sale,workers,\
tps,ipc,instr_per_commit,commits,retries,conflicts,validation_aborts,deadlock_victims,\
gave_up,backoff_units,spki_instr,spki_l1i,spki_l2i,spki_llc_i,spki_l1d,spki_l2d_llc_d";

/// Render rows as CSV (stable column order; see [`CSV_HEADER`]).
pub fn to_csv(rows: &[CcGridRow]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.2},{:.2},{},{},{},{:.1},{:.3},{:.1},{},{},{},{},{},{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            r.system,
            r.policy,
            r.cell.theta,
            r.cell.read_ratio,
            r.cell.payload,
            r.cell.flash_sale,
            r.workers,
            r.tps,
            r.ipc,
            r.instr_per_commit,
            r.stats.commits,
            r.stats.retries,
            r.stats.conflicts,
            r.stats.validation_aborts,
            r.stats.deadlock_victims,
            r.stats.gave_up,
            r.stats.backoff_units,
            r.spki[0],
            r.spki[1],
            r.spki[2],
            r.spki[3],
            r.spki[4],
            r.spki[5],
        ));
    }
    out
}

/// Render a human-readable table of the rows.
pub fn render(rows: &[CcGridRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<9} {:<12} {:>5} {:>5} {:>4} {:>6} {:>9} {:>6} {:>10} {:>8} {:>8} {:>8} {:>7}\n",
        "system",
        "protocol",
        "theta",
        "read",
        "pay",
        "flash",
        "tps",
        "ipc",
        "instr/txn",
        "commits",
        "retries",
        "vfail",
        "victim"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<12} {:>5.2} {:>5.2} {:>4} {:>6} {:>9.0} {:>6.2} {:>10.0} {:>8} {:>8} {:>8} {:>7}\n",
            r.system,
            r.policy,
            r.cell.theta,
            r.cell.read_ratio,
            r.cell.payload,
            r.cell.flash_sale,
            r.tps,
            r.ipc,
            r.instr_per_commit,
            r.stats.commits,
            r.stats.retries,
            r.stats.validation_aborts,
            r.stats.deadlock_victims,
        ));
    }
    out
}

/// Smoke gate for CI: every (engine, protocol, cell) must have committed
/// transactions and a sane measurement.
pub fn smoke_check(rows: &[CcGridRow]) -> Result<(), String> {
    for r in rows {
        if r.stats.commits == 0 {
            return Err(format!(
                "{} / {} (theta {}): no transaction committed",
                r.system, r.policy, r.cell.theta
            ));
        }
        let sane = |x: f64| x.is_finite() && x > 0.0;
        if !sane(r.ipc) || !sane(r.tps) {
            return Err(format!(
                "{} / {}: degenerate measurement (ipc {}, tps {})",
                r.system, r.policy, r.ipc, r.tps
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(system: SystemKind, policy: CcPolicy) -> CcGridRow {
        let mut cfg = CcGridCfg::smoke();
        cfg.workers = 2;
        cfg.rows = 128;
        cfg.window = WindowSpec {
            warmup: 10,
            measured: 40,
            reps: 1,
        };
        let cell = CellSpec {
            theta: 0.9,
            read_ratio: 0.5,
            payload: 8,
            flash_sale: false,
        };
        run_cell(system, policy, cell, &cfg)
    }

    #[test]
    fn cells_commit_on_every_policy() {
        for policy in CcGridCfg::all_policies() {
            let row = tiny(SystemKind::VoltDb, policy);
            assert!(
                row.stats.commits > 0,
                "{}/{}: no commits",
                row.system,
                row.policy
            );
            assert!(row.tps > 0.0);
        }
    }

    #[test]
    fn contention_surfaces_conflicts_under_nowait() {
        // Two workers hammering a 16-row hot set under no-wait 2PL must
        // observe at least one conflict in lockstep op interleaving.
        let mut cfg = CcGridCfg::smoke();
        cfg.workers = 3;
        cfg.rows = 16;
        cfg.window = WindowSpec {
            warmup: 20,
            measured: 150,
            reps: 1,
        };
        let cell = CellSpec {
            theta: 0.95,
            read_ratio: 0.0,
            payload: 8,
            flash_sale: true,
        };
        let row = run_cell(SystemKind::ShoreMt, CcPolicy::TwoPlNoWait, cell, &cfg);
        assert!(row.stats.commits > 0);
        assert!(
            row.stats.retries > 0,
            "hot-row writes under no-wait must conflict: {:?}",
            row.stats
        );
    }

    #[test]
    fn csv_round_trip_shape() {
        let row = tiny(SystemKind::HyPer, CcPolicy::Occ);
        let csv = to_csv(&[row]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), CSV_HEADER);
        let data = lines.next().unwrap();
        assert_eq!(data.split(',').count(), CSV_HEADER.split(',').count());
        assert!(data.starts_with("HyPer,occ,"));
    }
}
