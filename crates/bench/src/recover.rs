//! Crash-recovery harness: kill a durably-logging engine at a
//! deterministic point, replay checkpoint + durable log tail, and verify
//! that exactly the acknowledged work survives.
//!
//! One recover run builds an engine in durable mode
//! ([`engines::DurableDb`]): record retention with redo/undo payloads,
//! epoch group commit, and the simulated NVMe log device so every group
//! flush pays an fsync-equivalent cost in simulated cycles. Workers then
//! drive a lockstep schedule mixing
//!
//! * **verified counter increments** on worker-private rows of a
//!   `recover_counters` oracle table (the durability oracle),
//! * **deliberately aborted increments** on a separate `recover_scratch`
//!   table (the no-phantom-abort oracle),
//! * regular transactions of the configured workload, and
//! * **fuzzy checkpoint capture**: from `ckpt_start` on, each worker's
//!   [`storage::checkpoint::Checkpointer`] copies its own oracle rows in
//!   chunked read-only transactions interleaved with live traffic — no
//!   quiescing.
//!
//! The crash is a one-shot [`faults::FaultPlan`] trigger
//! (`recover/kill` at slot `kill_at`): under lockstep pacing every worker
//! observes it at the same slot ordinal, so the whole engine "loses
//! power" at a transaction boundary. What survives is exactly the log
//! prefix at or below each stream's flushed horizon — commits past it
//! were never acknowledged to the client (group commit acknowledges at
//! flush), so they are allowed to vanish; commits at or below it MUST
//! survive.
//!
//! Recovery then runs twice through [`storage::recovery::recover`]
//! (checkpoint image if complete, redo winners past the image horizon,
//! undo unfinished tails) into an empty [`ApplyDb`] each time, and a
//! strict reference re-execution replays the same durable prefix with
//! [`storage::recovery::replay`]. Verification:
//!
//! 1. zero lost updates: every acknowledged oracle increment is present;
//! 2. zero phantoms: no oracle value beyond what the engine committed,
//!    and no aborted scratch increment reappears;
//! 3. per-table FNV digests of the recovered state equal the reference
//!    re-execution, and the two recovery runs are bit-identical.
//!
//! Everything is deterministic, so a run is a pure function of its
//! manifest: `bench recover --plan <manifest.json>` replays it and
//! cross-checks the recorded digests.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use engines::{DurabilityCfg, DurableDb, SystemBuilder, SystemKind};
use faults::FaultPlan;
use microarch::{measure_workers, Measurement, Pacing, WindowSpec};
use obs::json::Json;
use obs::Phase;
use oltp::{tuple, Column, DataType, OltpError, Schema, Session, TableDef, TableId, Value};
use storage::checkpoint::{Checkpoint, Checkpointer};
use storage::recovery::{recover, replay, RecoveryStats, ReplayStats};
use storage::wal::{LogRecord, Lsn};
use uarch_sim::{MachineConfig, Sim};

use crate::chaos::system_cli;
use crate::{scale_factor, WorkloadCfg};

/// Worker-private oracle rows per worker.
const KEYS_PER_WORKER: u64 = 4;

/// Worker-private scratch rows per worker (aborted-increment oracle).
const SCRATCH_KEYS: u64 = 2;

/// Oracle keys captured per checkpoint step (chunked fuzzy capture).
const CKPT_CHUNK: usize = 2;

/// The one-shot kill site evaluated once per slot per worker.
const KILL_SITE: &str = "recover/kill";

/// Configuration of one crash-recovery run.
#[derive(Clone, Debug)]
pub struct RecoverCfg {
    /// Engine under test.
    pub system: SystemKind,
    /// Workload providing the realistic-traffic slots.
    pub workload: WorkloadCfg,
    /// Workload CLI name (for manifests and file slugs).
    pub workload_name: String,
    /// Fault-plan seed (recorded for replay; the kill itself is one-shot).
    pub seed: u64,
    /// Slot ordinal of the crash; `None` picks 60% of the window, and a
    /// value at or past the window means the run completes without a
    /// crash (a pure group-commit latency run).
    pub kill_at: Option<u64>,
    /// Slot ordinal where fuzzy checkpoint capture starts (default: 25%
    /// of the window).
    pub ckpt_start: Option<u64>,
    /// Group-commit epoch: commits per group flush.
    pub epoch: u32,
    /// Worker threads (= simulated cores = partitions).
    pub workers: usize,
    /// Measurement window; `None` uses the recover default scaled by
    /// `IMOLTP_SCALE`. Repetitions are forced to 1 (a crash has no
    /// meaning across reps).
    pub window: Option<WindowSpec>,
    /// Exact plan to install instead of the derived one-shot plan — used
    /// when replaying a manifest.
    pub plan_override: Option<FaultPlan>,
}

impl RecoverCfg {
    /// Defaults for `bench recover <system> <workload>`.
    pub fn new(system: SystemKind, workload: WorkloadCfg, workload_name: &str) -> Self {
        RecoverCfg {
            system,
            workload,
            workload_name: workload_name.to_string(),
            seed: 1,
            kill_at: None,
            ckpt_start: None,
            epoch: 8,
            workers: 2,
            window: None,
            plan_override: None,
        }
    }

    fn effective_window(&self) -> WindowSpec {
        let mut w = self.window.unwrap_or_else(|| {
            WindowSpec {
                warmup: 80,
                measured: 320,
                reps: 1,
            }
            .scaled(scale_factor())
        });
        w.reps = 1;
        w
    }
}

/// One run's resolved schedule coordinates.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleInfo {
    /// Total transaction slots (warmup + measured).
    pub slots: u64,
    /// Resolved kill slot (may be >= `slots`: no crash).
    pub kill_at: u64,
    /// Resolved checkpoint-start slot.
    pub ckpt_start: u64,
}

/// Per-stream checkpoint outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct CkptOutcome {
    /// Whether the stream's merged image completed before the crash
    /// (capture done on every contributing worker AND its end horizon
    /// durable at the crash).
    pub complete: bool,
    /// Rows in the merged image.
    pub image_rows: u64,
}

/// Result of one crash-recovery run.
pub struct RecoverReport {
    /// Resolved schedule.
    pub schedule: ScheduleInfo,
    /// Whether the kill actually fired (false = ran to completion).
    pub crashed: bool,
    /// Oracle increments acknowledged durable at the crash (commit
    /// horizon at or below the stream's flushed LSN).
    pub confirmed: u64,
    /// Oracle increments the engine committed (durable or not); the
    /// recovered value may not exceed this.
    pub committed: u64,
    /// Acknowledged increments missing after recovery (MUST be 0).
    pub lost_updates: u64,
    /// Recovered increments beyond the committed bound (MUST be 0).
    pub phantom_updates: u64,
    /// Aborted scratch increments visible after recovery (MUST be 0).
    pub aborted_effects: u64,
    /// Per-stream checkpoint outcomes.
    pub checkpoints: Vec<CkptOutcome>,
    /// Summed ARIES-lite recovery statistics (first run).
    pub recovery: RecoveryStats,
    /// Summed strict reference-replay statistics.
    pub reference: ReplayStats,
    /// Per-table digests of the recovered state.
    pub digests: Vec<(u32, u64)>,
    /// Whether recovered digests match the reference re-execution.
    pub digests_match: bool,
    /// Whether a second recovery run was bit-identical to the first.
    pub second_match: bool,
    /// Group-commit latency samples (simulated cycles), sorted.
    pub commit_latencies: Vec<f64>,
    /// The windowed measurement (crashed runs idle their tail slots).
    pub measurement: Measurement,
    /// The replayable manifest.
    pub manifest: Json,
}

impl RecoverReport {
    /// Whether every durability gate held.
    pub fn consistent(&self) -> bool {
        self.lost_updates == 0
            && self.phantom_updates == 0
            && self.aborted_effects == 0
            && self.digests_match
            && self.second_match
    }

    /// Latency quantile in simulated cycles (0 when no device samples).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.commit_latencies.is_empty() {
            return 0.0;
        }
        let idx = ((self.commit_latencies.len() - 1) as f64 * q).round() as usize;
        self.commit_latencies[idx]
    }
}

/// FNV-1a over u64 words (same construction as the golden-counter
/// digests, so any drift in recovered row state flips it).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn bytes(&mut self, b: &[u8]) {
        for &byte in b {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Recovery target: a plain multi-table row store behind the [`Session`]
/// trait. Recovery replays *into* this instead of a live engine so the
/// recovered state can be digested per table and compared bit-for-bit
/// against an independent reference re-execution.
#[derive(Default)]
pub struct ApplyDb {
    tables: BTreeMap<u32, BTreeMap<u64, Vec<Value>>>,
    in_txn: bool,
}

impl ApplyDb {
    /// Empty target.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recovered row, if present.
    pub fn value(&self, table: u32, key: u64) -> Option<&[Value]> {
        self.tables.get(&table)?.get(&key).map(Vec::as_slice)
    }

    /// Per-table FNV digests over `(key, encoded row)` in key order.
    pub fn digests(&self) -> Vec<(u32, u64)> {
        self.tables
            .iter()
            .map(|(&t, rows)| {
                let mut h = Fnv::new();
                h.word(rows.len() as u64);
                for (&k, row) in rows {
                    h.word(k);
                    h.bytes(&tuple::encode(row));
                }
                (t, h.0)
            })
            .collect()
    }
}

impl Session for ApplyDb {
    fn name(&self) -> &'static str {
        "recover-apply"
    }
    fn core(&self) -> usize {
        0
    }
    fn begin(&mut self) {
        assert!(!self.in_txn, "ApplyDb: nested begin");
        self.in_txn = true;
    }
    fn commit(&mut self) -> oltp::OltpResult<()> {
        assert!(self.in_txn, "ApplyDb: commit outside txn");
        self.in_txn = false;
        Ok(())
    }
    fn abort(&mut self) {
        self.in_txn = false;
    }
    fn insert(&mut self, t: TableId, key: u64, row: &[Value]) -> oltp::OltpResult<()> {
        let rows = self.tables.entry(t.0).or_default();
        if rows.contains_key(&key) {
            return Err(OltpError::DuplicateKey { table: t, key });
        }
        rows.insert(key, row.to_vec());
        Ok(())
    }
    fn read_with(
        &mut self,
        t: TableId,
        key: u64,
        f: &mut dyn FnMut(&[Value]),
    ) -> oltp::OltpResult<bool> {
        match self.tables.get(&t.0).and_then(|rows| rows.get(&key)) {
            Some(r) => {
                f(r);
                Ok(true)
            }
            None => Ok(false),
        }
    }
    fn update(
        &mut self,
        t: TableId,
        key: u64,
        f: &mut dyn FnMut(&mut oltp::Row),
    ) -> oltp::OltpResult<bool> {
        match self
            .tables
            .get_mut(&t.0)
            .and_then(|rows| rows.get_mut(&key))
        {
            Some(r) => {
                f(r);
                Ok(true)
            }
            None => Ok(false),
        }
    }
    fn scan(
        &mut self,
        t: TableId,
        lo: u64,
        hi: u64,
        f: &mut dyn FnMut(u64, &[Value]) -> bool,
    ) -> oltp::OltpResult<u64> {
        let mut n = 0;
        if let Some(rows) = self.tables.get(&t.0) {
            for (&k, r) in rows.range(lo..=hi) {
                n += 1;
                if !f(k, r) {
                    break;
                }
            }
        }
        Ok(n)
    }
    fn delete(&mut self, t: TableId, key: u64) -> oltp::OltpResult<bool> {
        Ok(self
            .tables
            .get_mut(&t.0)
            .is_some_and(|rows| rows.remove(&key).is_some()))
    }
}

/// Per-worker harness state (a `Mutex` slot, uncontended during the run —
/// only the owning worker locks it until the post-crash harvest).
struct RecoverWorker {
    worker: usize,
    session: Option<Box<dyn Session>>,
    keys: Vec<u64>,
    scratch: Vec<u64>,
    /// Engine-committed increments per oracle key.
    committed: Vec<u64>,
    /// Commit-time log horizons per oracle key (confirmed at the crash
    /// iff at or below the stream's flushed LSN).
    horizons: Vec<Vec<Lsn>>,
    /// Commit-stage errors per oracle key (effects cannot survive
    /// recovery, but they widen no bound: the engine logged an Abort).
    commit_errors: u64,
    txn_no: u64,
    /// Fuzzy capture state.
    cp: Option<Checkpointer>,
    cp_begin: Lsn,
    cp_started: bool,
    cp_image: Option<storage::checkpoint::TableImage>,
    cp_end: Option<Lsn>,
}

/// Crash coordinates, captured once by the first worker to observe the
/// kill (lockstep: no records are appended in or after the kill slot).
struct CrashInfo {
    slot: u64,
    status: Vec<engines::LogStatus>,
}

/// Stable worker-private oracle key (strided like the workload keys).
fn oracle_key(worker: usize, workers: usize, k: u64) -> u64 {
    (k * workers as u64 + worker as u64) * 64
}

/// Which log stream a worker's transactions land on.
fn stream_of(system: SystemKind, worker: usize) -> usize {
    if system.partitioned() {
        worker
    } else {
        0
    }
}

/// Run one crash-recovery point end to end: durable run, deterministic
/// kill, double recovery, reference re-execution, oracle verification.
pub fn run(cfg: &RecoverCfg) -> RecoverReport {
    let workers = cfg.workers.max(1);
    let window = cfg.effective_window();
    let slots = window.warmup + window.measured;
    let kill_at = cfg.kill_at.unwrap_or(slots * 3 / 5);
    let ckpt_start = cfg.ckpt_start.unwrap_or(slots / 4);
    let schedule = ScheduleInfo {
        slots,
        kill_at,
        ckpt_start,
    };
    let plan = cfg
        .plan_override
        .clone()
        .unwrap_or_else(|| FaultPlan::uniform(cfg.seed, 0.0).site_at(KILL_SITE, kill_at));

    // Claim the process-global injector before loading (a concurrent
    // chaos/recover test must not see this plan early).
    let quiesced = faults::quiesce();

    let sim = Sim::new(MachineConfig::ivy_bridge(workers));
    let mut db: Box<dyn DurableDb> = SystemBuilder::new(cfg.system)
        .cores(workers)
        .partitions(workers)
        .build_durable(&sim);
    // Durable mode from the first record: the load itself is logged, so
    // recovery replays into a completely empty target.
    db.enable_durability(&DurabilityCfg {
        epoch: cfg.epoch,
        ..DurabilityCfg::default()
    });

    let ctable = db.create_table(TableDef::new(
        "recover_counters",
        Schema::new(vec![
            Column::new("key", DataType::Long),
            Column::new("hits", DataType::Long),
        ]),
        workers as u64 * KEYS_PER_WORKER,
    ));
    let stable = db.create_table(TableDef::new(
        "recover_scratch",
        Schema::new(vec![
            Column::new("key", DataType::Long),
            Column::new("hits", DataType::Long),
        ]),
        workers as u64 * SCRATCH_KEYS,
    ));
    let mut w = cfg.workload.build();
    sim.offline(|| {
        for worker in 0..workers {
            let mut s = db.session(worker);
            for k in 0..KEYS_PER_WORKER {
                let key = oracle_key(worker, workers, k);
                s.begin();
                s.insert(ctable, key, &[Value::Long(key as i64), Value::Long(0)])
                    .expect("oracle row insert");
                s.commit().expect("oracle row commit");
            }
            for k in 0..SCRATCH_KEYS {
                let key = oracle_key(worker, workers, k) + 1;
                s.begin();
                s.insert(stable, key, &[Value::Long(key as i64), Value::Long(0)])
                    .expect("scratch row insert");
                s.commit().expect("scratch row commit");
            }
        }
        w.setup(db.as_mut(), workers);
    });
    sim.warm_data();
    // The load must survive any crash: force it durable. Then re-arm
    // durable mode: retention is untouched (the load's records stay on
    // the streams), but the log device is re-attached with an empty
    // queue — the offline bulk load pushed its whole volume through the
    // device while the cycle clock stood still, and the accumulated
    // queue backlog would otherwise dominate every measured commit
    // latency. Load-time latency samples are discarded with it (they
    // are not client-visible commits).
    db.flush_all();
    db.enable_durability(&DurabilityCfg {
        epoch: cfg.epoch,
        ..DurabilityCfg::default()
    });
    let _ = db.take_commit_latencies();

    let engine: &'static str = db.name();
    let system = cfg.system;
    let slots_mx: Vec<Mutex<RecoverWorker>> = (0..workers)
        .map(|worker| {
            Mutex::new(RecoverWorker {
                worker,
                session: None,
                keys: (0..KEYS_PER_WORKER)
                    .map(|k| oracle_key(worker, workers, k))
                    .collect(),
                scratch: (0..SCRATCH_KEYS)
                    .map(|k| oracle_key(worker, workers, k) + 1)
                    .collect(),
                committed: vec![0; KEYS_PER_WORKER as usize],
                horizons: vec![Vec::new(); KEYS_PER_WORKER as usize],
                commit_errors: 0,
                txn_no: 0,
                cp: None,
                cp_begin: Lsn(0),
                cp_started: false,
                cp_image: None,
                cp_end: None,
            })
        })
        .collect();

    let installed = quiesced.install(plan.clone());
    let crashed = AtomicBool::new(false);
    let crash: Mutex<Option<CrashInfo>> = Mutex::new(None);

    let cores: Vec<usize> = (0..workers).collect();
    let wl = Mutex::new(w);
    let measurement = {
        let db = &*db;
        let wl = &wl;
        let slots_mx = &slots_mx;
        let crashed = &crashed;
        let crash = &crash;
        measure_workers(&sim, &cores, window, Pacing::Lockstep, |worker| {
            let mut session = Some(db.session(worker));
            move |_| {
                if crashed.load(Ordering::SeqCst) {
                    return; // power is off: idle out the window
                }
                let mut slot = slots_mx[worker].lock().unwrap();
                if slot.session.is_none() {
                    slot.session = session.take();
                }
                let slot = &mut *slot;
                let n = slot.txn_no;
                slot.txn_no += 1;
                if faults::fire(KILL_SITE, worker) {
                    // Lockstep: every worker fires at this same ordinal,
                    // before doing any work this slot — the crash lands
                    // exactly at the slot boundary. First one in records
                    // the durable coordinates.
                    let mut c = crash.lock().unwrap();
                    if c.is_none() {
                        *c = Some(CrashInfo {
                            slot: n,
                            status: db.log_status(),
                        });
                    }
                    crashed.store(true, Ordering::SeqCst);
                    return;
                }

                let stream = stream_of(system, worker);
                let s = slot.session.as_mut().expect("session open").as_mut();
                if n % 8 == 3 {
                    // Deliberately aborted increment: its effect must
                    // never survive recovery.
                    let _t = obs::span(engine, Phase::Txn, worker);
                    let key = slot.scratch[(n / 8 % SCRATCH_KEYS) as usize];
                    s.begin();
                    let _ = s.update(stable, key, &mut |row| {
                        if let Value::Long(v) = &mut row[1] {
                            *v += 1;
                        }
                    });
                    s.abort();
                } else if n.is_multiple_of(2) {
                    // Verified oracle increment.
                    let _t = obs::span(engine, Phase::Txn, worker);
                    let ki = (n / 2 % KEYS_PER_WORKER) as usize;
                    let key = slot.keys[ki];
                    s.begin();
                    match s.update(ctable, key, &mut |row| {
                        if let Value::Long(v) = &mut row[1] {
                            *v += 1;
                        }
                    }) {
                        Ok(found) => {
                            debug_assert!(found, "oracle key {key} vanished");
                            match s.commit() {
                                Ok(()) => {
                                    slot.committed[ki] += 1;
                                    // Over-approximates the commit LSN on
                                    // shared streams: conservative (an
                                    // increment may count as unconfirmed)
                                    // but never unsound.
                                    slot.horizons[ki].push(db.log_status()[stream].horizon);
                                }
                                Err(_) => {
                                    s.abort();
                                    slot.commit_errors += 1;
                                }
                            }
                        }
                        Err(_) => s.abort(),
                    }
                } else {
                    // Realistic traffic; a 2PL conflict aborts and moves
                    // on (the durability oracle only tracks oracle rows).
                    let _t = obs::span(engine, Phase::Txn, worker);
                    let r = wl.lock().unwrap().exec(s, worker);
                    if r.is_err() {
                        s.abort();
                    }
                }

                // Fuzzy checkpoint capture rides along after the slot's
                // transaction: chunked read-only copies of this worker's
                // own oracle rows, no quiescing.
                if n >= ckpt_start && slot.cp_image.is_none() {
                    let _t = obs::span(engine, Phase::Checkpoint, worker);
                    if !slot.cp_started {
                        slot.cp_started = true;
                        slot.cp_begin = db.log_status()[stream].horizon;
                        slot.cp = Some(Checkpointer::new(ctable, slot.keys.clone()));
                    }
                    if let Some(cp) = slot.cp.as_mut() {
                        // Transient capture errors (a locked row) retry
                        // on the next slot; progress is kept.
                        let _ = cp.step(s, CKPT_CHUNK);
                        if cp.done() {
                            let cp = slot.cp.take().expect("checkpointer present");
                            slot.cp_image = Some(cp.into_image());
                            slot.cp_end = Some(db.log_status()[stream].horizon);
                        }
                    }
                }
            }
        })
    };

    let fired = installed.fired_count();
    drop(installed); // disarm before harvesting
    let crash_info = crash.into_inner().unwrap();
    let crashed = crash_info.is_some();
    let status = match crash_info {
        Some(c) => {
            debug_assert_eq!(c.slot, kill_at);
            debug_assert!(fired >= 1);
            c.status
        }
        None => {
            // Ran to completion: drain every stream so the whole run is
            // durable (the no-crash baseline of the epoch sweep).
            db.flush_all();
            db.log_status()
        }
    };

    // Harvest: per-stream durable prefixes and merged checkpoints.
    let streams = db.log_streams();
    let durable: Vec<Vec<LogRecord>> = streams
        .iter()
        .enumerate()
        .map(|(i, recs)| {
            let f = status[i].flushed;
            recs.iter().filter(|r| r.lsn <= f).cloned().collect()
        })
        .collect();
    let mut ckpts: Vec<Option<Checkpoint>> = (0..streams.len()).map(|_| None).collect();
    let mut capture_done: Vec<bool> = vec![true; streams.len()];
    for slot in &slots_mx {
        let mut slot = slot.lock().unwrap();
        let stream = stream_of(system, slot.worker);
        if !slot.cp_started {
            capture_done[stream] = false;
            continue;
        }
        let done = slot.cp_image.is_some();
        capture_done[stream] &= done;
        let part = Checkpoint {
            begin_lsn: slot.cp_begin,
            end_lsn: slot.cp_end.unwrap_or(slot.cp_begin),
            complete: false, // decided stream-wide below
            tables: match slot.cp_image.take() {
                Some(img) => vec![img],
                // Mid-capture rows still inside the Checkpointer are
                // discarded: the stream image is incomplete anyway.
                None => Vec::new(),
            },
        };
        match &mut ckpts[stream] {
            Some(c) => c.absorb(part),
            c @ None => *c = Some(part),
        }
    }
    let mut ckpt_outcomes = Vec::with_capacity(streams.len());
    for (i, c) in ckpts.iter_mut().enumerate() {
        let outcome = match c {
            Some(ck) => {
                // Complete iff every contributing capture finished AND its
                // end horizon is durable: any row state the image saw has
                // its originating record on the durable prefix, so undo
                // can always compensate.
                ck.complete = capture_done[i] && ck.end_lsn <= status[i].flushed;
                CkptOutcome {
                    complete: ck.complete,
                    image_rows: ck.rows(),
                }
            }
            None => CkptOutcome::default(),
        };
        ckpt_outcomes.push(outcome);
    }

    // Recovery (twice — bit-identical or bust) and the strict reference.
    let recover_once = || -> (ApplyDb, RecoveryStats) {
        let _t = obs::span(engine, Phase::Recovery, 0);
        let mut target = ApplyDb::new();
        let mut stats = RecoveryStats::default();
        for (i, recs) in durable.iter().enumerate() {
            let s = recover(ckpts[i].as_ref(), recs, &mut target).expect("recovery replay failed");
            stats.winners += s.winners;
            stats.aborted += s.aborted;
            stats.unfinished += s.unfinished;
            stats.image_rows += s.image_rows;
            stats.redo_applied += s.redo_applied;
            stats.redo_skipped += s.redo_skipped;
            stats.undo_applied += s.undo_applied;
            stats.undo_skipped += s.undo_skipped;
        }
        (target, stats)
    };
    let (rec_db, rec_stats) = recover_once();
    let (rec_db2, _) = recover_once();
    let digests = rec_db.digests();
    let second_match = digests == rec_db2.digests();

    let mut ref_db = ApplyDb::new();
    let mut ref_stats = ReplayStats::default();
    for recs in &durable {
        let s = replay(recs, &mut ref_db).expect("reference replay failed");
        ref_stats.txns += s.txns;
        ref_stats.losers += s.losers;
        ref_stats.applied += s.applied;
    }
    let digests_match = digests == ref_db.digests();

    // Oracle verification against the recovered state.
    let mut confirmed = 0u64;
    let mut committed = 0u64;
    let mut lost = 0u64;
    let mut phantom = 0u64;
    let mut aborted_effects = 0u64;
    for slot in &slots_mx {
        let slot = slot.lock().unwrap();
        let f = status[stream_of(system, slot.worker)].flushed;
        for ki in 0..KEYS_PER_WORKER as usize {
            let acked = slot.horizons[ki].iter().filter(|&&h| h <= f).count() as u64;
            let actual = match rec_db.value(ctable.0, slot.keys[ki]) {
                Some(row) => match row[1] {
                    Value::Long(v) => v as u64,
                    _ => panic!("oracle value column changed type"),
                },
                None => 0, // a lost row counts as zero increments
            };
            confirmed += acked;
            committed += slot.committed[ki];
            lost += acked.saturating_sub(actual);
            phantom += actual.saturating_sub(slot.committed[ki]);
        }
        for &key in &slot.scratch {
            if let Some(row) = rec_db.value(stable.0, key) {
                if let Value::Long(v) = row[1] {
                    aborted_effects += v as u64;
                }
            }
        }
    }

    let mut commit_latencies = db.take_commit_latencies();
    commit_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut report = RecoverReport {
        schedule,
        crashed,
        confirmed,
        committed,
        lost_updates: lost,
        phantom_updates: phantom,
        aborted_effects,
        checkpoints: ckpt_outcomes,
        recovery: rec_stats,
        reference: ref_stats,
        digests,
        digests_match,
        second_match,
        commit_latencies,
        measurement,
        manifest: Json::Null,
    };
    report.manifest = manifest_json(cfg, &plan, window, &report);
    report
}

fn manifest_json(
    cfg: &RecoverCfg,
    plan: &FaultPlan,
    window: WindowSpec,
    r: &RecoverReport,
) -> Json {
    Json::obj(vec![
        ("kind", Json::str("recover-manifest")),
        ("system", Json::str(cfg.system.label())),
        ("system_cli", Json::str(system_cli(cfg.system))),
        ("workload", Json::str(&cfg.workload_name)),
        ("workers", Json::u64(cfg.workers as u64)),
        ("epoch", Json::u64(u64::from(cfg.epoch))),
        ("kill_at", Json::u64(r.schedule.kill_at)),
        ("ckpt_start", Json::u64(r.schedule.ckpt_start)),
        (
            "window",
            Json::obj(vec![
                ("warmup", Json::u64(window.warmup)),
                ("measured", Json::u64(window.measured)),
                ("reps", Json::u64(u64::from(window.reps))),
            ]),
        ),
        ("plan", plan.to_json()),
        (
            "outcomes",
            Json::obj(vec![
                ("crashed", Json::Bool(r.crashed)),
                ("confirmed", Json::u64(r.confirmed)),
                ("committed", Json::u64(r.committed)),
                ("lost_updates", Json::u64(r.lost_updates)),
                ("phantom_updates", Json::u64(r.phantom_updates)),
                ("aborted_effects", Json::u64(r.aborted_effects)),
                ("winners", Json::u64(r.recovery.winners)),
                ("unfinished", Json::u64(r.recovery.unfinished)),
                ("aborted", Json::u64(r.recovery.aborted)),
                ("image_rows", Json::u64(r.recovery.image_rows)),
                ("redo_applied", Json::u64(r.recovery.redo_applied)),
                ("redo_skipped", Json::u64(r.recovery.redo_skipped)),
                ("undo_applied", Json::u64(r.recovery.undo_applied)),
                ("undo_skipped", Json::u64(r.recovery.undo_skipped)),
            ]),
        ),
        (
            "checkpoints",
            Json::Arr(
                r.checkpoints
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("complete", Json::Bool(c.complete)),
                            ("image_rows", Json::u64(c.image_rows)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "digests",
            Json::Arr(
                r.digests
                    .iter()
                    .map(|(t, d)| {
                        Json::obj(vec![
                            ("table", Json::u64(u64::from(*t))),
                            ("digest", Json::str(&format!("{d:#018x}"))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("commit_p50_cycles", Json::Num(r.latency_quantile(0.5))),
        ("commit_p99_cycles", Json::Num(r.latency_quantile(0.99))),
        ("commit_samples", Json::u64(r.commit_latencies.len() as u64)),
        ("tps", Json::Num(r.measurement.tps)),
        ("txns", Json::u64(r.measurement.txns)),
    ])
}

/// Write the manifest under `dir`; returns its path.
pub fn write_manifest(report: &RecoverReport, cfg: &RecoverCfg, dir: &Path) -> std::path::PathBuf {
    fs::create_dir_all(dir).expect("create results dir");
    let slug = |s: &str| s.to_ascii_lowercase().replace([' ', '-'], "_");
    let path = dir.join(format!(
        "recover_{}_{}.json",
        slug(cfg.system.label()),
        slug(&cfg.workload_name)
    ));
    fs::write(&path, report.manifest.render()).expect("write recover manifest");
    path
}

/// One row of the recover sweep CSV.
pub struct RecoverRow {
    /// Engine label.
    pub system: String,
    /// Workload CLI name.
    pub workload: String,
    /// Group-commit epoch.
    pub epoch: u32,
    /// Kill-point name (`early`/`mid`/`late`).
    pub kill: &'static str,
    /// The run's report.
    pub report: RecoverReport,
}

/// The nightly sweep: engines x kill points x group-commit epochs. The
/// `early` kill lands one slot after checkpoint capture starts (the
/// prefix-consistency stress), `mid` at 60%, `late` at 90% of the window.
pub fn sweep(smoke: bool) -> Vec<RecoverRow> {
    let systems: &[SystemKind] = if smoke {
        &[SystemKind::ShoreMt, SystemKind::HyPer]
    } else {
        &[
            SystemKind::ShoreMt,
            SystemKind::DbmsD,
            SystemKind::VoltDb,
            SystemKind::HyPer,
            SystemKind::DbmsM {
                index: engines::DbmsMIndex::Hash,
                compiled: true,
            },
        ]
    };
    let epochs: &[u32] = if smoke { &[8] } else { &[4, 32] };
    let kills: &[&'static str] = if smoke {
        &["early"]
    } else {
        &["early", "mid", "late"]
    };
    let window = if smoke {
        WindowSpec {
            warmup: 30,
            measured: 90,
            reps: 1,
        }
    } else {
        WindowSpec {
            warmup: 60,
            measured: 240,
            reps: 1,
        }
    };
    let slots = window.warmup + window.measured;
    let workload = WorkloadCfg::Micro {
        size: workloads::DbSize::Mb1,
        rows_per_txn: 1,
        read_only: false,
        strings: false,
    };
    let mut rows = Vec::new();
    for &system in systems {
        for &epoch in epochs {
            for &kill in kills {
                let mut cfg = RecoverCfg::new(system, workload.clone(), "micro-rw");
                cfg.epoch = epoch;
                cfg.window = Some(window);
                cfg.ckpt_start = Some(slots / 4);
                cfg.kill_at = Some(match kill {
                    "early" => slots / 4 + 1,
                    "mid" => slots * 3 / 5,
                    _ => slots * 9 / 10,
                });
                let report = run(&cfg);
                rows.push(RecoverRow {
                    system: system.label().to_string(),
                    workload: "micro-rw".to_string(),
                    epoch,
                    kill,
                    report,
                });
            }
        }
    }
    rows
}

/// Render sweep rows as CSV.
pub fn to_csv(rows: &[RecoverRow]) -> String {
    let mut out = String::from(
        "system,workload,epoch,kill,kill_at,slots,confirmed,committed,lost,phantom,\
         aborted_effects,ckpt_complete,image_rows,winners,unfinished,redo_applied,\
         undo_applied,commit_p50_cycles,commit_p99_cycles,consistent\n",
    );
    for r in rows {
        let rep = &r.report;
        let complete = rep.checkpoints.iter().filter(|c| c.complete).count();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}/{},{},{},{},{},{},{:.0},{:.0},{}\n",
            r.system,
            r.workload,
            r.epoch,
            r.kill,
            rep.schedule.kill_at,
            rep.schedule.slots,
            rep.confirmed,
            rep.committed,
            rep.lost_updates,
            rep.phantom_updates,
            rep.aborted_effects,
            complete,
            rep.checkpoints.len(),
            rep.recovery.image_rows,
            rep.recovery.winners,
            rep.recovery.unfinished,
            rep.recovery.redo_applied,
            rep.recovery.undo_applied,
            rep.latency_quantile(0.5),
            rep.latency_quantile(0.99),
            rep.consistent(),
        ));
    }
    out
}

/// Human-readable sweep summary.
pub fn render(rows: &[RecoverRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>5} {:>5} {:>9} {:>6} {:>8} {:>10} {:>10} {:>6}\n",
        "system", "epoch", "kill", "confirmed", "lost", "phantom", "p50(cyc)", "p99(cyc)", "ok"
    ));
    for r in rows {
        let rep = &r.report;
        out.push_str(&format!(
            "{:<22} {:>5} {:>5} {:>9} {:>6} {:>8} {:>10.0} {:>10.0} {:>6}\n",
            r.system,
            r.epoch,
            r.kill,
            rep.confirmed,
            rep.lost_updates,
            rep.phantom_updates + rep.aborted_effects,
            rep.latency_quantile(0.5),
            rep.latency_quantile(0.99),
            if rep.consistent() { "PASS" } else { "FAIL" }
        ));
    }
    out
}

/// CI gate over a sweep: every cell must hold every durability invariant.
pub fn smoke_check(rows: &[RecoverRow]) -> Result<(), String> {
    for r in rows {
        let rep = &r.report;
        if !rep.consistent() {
            return Err(format!(
                "{} epoch {} kill {}: lost {} phantom {} aborted_effects {} \
                 digests_match {} second_match {}",
                r.system,
                r.epoch,
                r.kill,
                rep.lost_updates,
                rep.phantom_updates,
                rep.aborted_effects,
                rep.digests_match,
                rep.second_match
            ));
        }
        if rep.confirmed == 0 && rep.schedule.kill_at > rep.schedule.slots / 10 {
            return Err(format!(
                "{} epoch {} kill {}: no confirmed commits — the oracle never engaged",
                r.system, r.epoch, r.kill
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(system: SystemKind, kill_at: Option<u64>) -> RecoverReport {
        let mut cfg = RecoverCfg::new(
            system,
            WorkloadCfg::Micro {
                size: workloads::DbSize::Mb1,
                rows_per_txn: 1,
                read_only: false,
                strings: false,
            },
            "micro-rw",
        );
        cfg.window = Some(WindowSpec {
            warmup: 20,
            measured: 60,
            reps: 1,
        });
        cfg.kill_at = kill_at;
        run(&cfg)
    }

    #[test]
    fn crashed_run_recovers_consistently() {
        let r = tiny(SystemKind::ShoreMt, None);
        assert!(r.crashed, "the one-shot kill must fire");
        assert!(r.confirmed > 0, "group commit confirmed nothing");
        assert!(
            r.consistent(),
            "lost {} phantom {} aborted {} digests {} second {}",
            r.lost_updates,
            r.phantom_updates,
            r.aborted_effects,
            r.digests_match,
            r.second_match
        );
    }

    #[test]
    fn uncrashed_run_is_fully_durable() {
        let r = tiny(SystemKind::HyPer, Some(u64::MAX));
        assert!(!r.crashed);
        // Post-run flush makes everything durable: confirmed == committed.
        assert_eq!(r.confirmed, r.committed);
        assert!(r.consistent());
        assert!(
            !r.commit_latencies.is_empty(),
            "the log device produced no latency samples"
        );
    }
}
