//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! figures all            # every figure + results/*.csv + EXPERIMENTS.md
//! figures fig1 ... fig27 # one figure as a text table
//! figures scaling        # worker-count scaling grid + results/scaling.csv
//! figures islands [--smoke]
//!                        # NUMA placement x cross-socket mix grid + results/islands.csv
//! figures cc [--smoke]   # CC protocol x contention grid + results/cc_grid.csv
//! figures calibrate      # quick per-(system,size) metric dump
//! figures record <system> <workload> <out.json>
//!                        # record one traced run for differential analysis
//! figures diff <a.json> <b.json> [--threshold PCT]
//!                        # decompose the throughput delta between two
//!                        # recorded runs; exit 1 past the regression gate
//! ```
//!
//! Set `IMOLTP_SCALE=<f64>` to scale measurement windows (e.g. `0.2` for a
//! smoke run).

use std::path::PathBuf;

use bench::args::{self, Parsed, Spec};
use bench::figures::{Fig, Figures};
use bench::suite;

/// Parse this subcommand's trailing arguments with the shared parser;
/// unknown flags exit 2 instead of being silently ignored.
fn parse_figures_args(cmd: &str, specs: &[Spec]) -> Parsed {
    let argv: Vec<String> = std::env::args().skip(2).collect();
    args::parse(&format!("figures {cmd}"), &argv, specs).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "help".into());
    let mut f = Figures::new();
    let fig: Option<Fig> = match arg.as_str() {
        "all" => {
            let root = repo_root();
            let failed = suite::run_all(&root);
            std::process::exit(if failed == 0 { 0 } else { 1 });
        }
        "calibrate" => {
            calibrate();
            return;
        }
        "scaling" => {
            let p = parse_figures_args("scaling", &[Spec::flag("--smoke")]);
            print!("{}", bench::scaling::run(&repo_root(), p.has("--smoke")));
            return;
        }
        "islands" => {
            let p = parse_figures_args("islands", &[Spec::flag("--smoke")]);
            let out = bench::islands::run(&repo_root(), p.has("--smoke"));
            print!("{out}");
            std::process::exit(if out.contains("FAIL:") { 1 } else { 0 });
        }
        "fig1" => Some(Fig::Scalar(f.fig_ipc_vs_size(true))),
        "fig2" => Some(Fig::Stall(f.fig_spki_vs_size(true))),
        "fig3" => Some(Fig::Stall(f.fig_spt_100gb(true))),
        "fig4" => Some(Fig::Scalar(f.fig_ipc_vs_rows(true))),
        "fig5" => Some(Fig::Stall(f.fig_spki_vs_rows(true))),
        "fig6" => Some(Fig::Stall(f.fig_spt_vs_rows(true))),
        "fig7" => Some(Fig::Scalar(f.fig_engine_share())),
        "fig8" => Some(Fig::Scalar(f.fig_tpcb_ipc())),
        "fig9" => Some(Fig::Stall(f.fig_tpcb_spki())),
        "fig10" => Some(Fig::Scalar(f.fig_tpcc_ipc())),
        "fig11" => Some(Fig::Stall(f.fig_tpcc_spki())),
        "fig12" => Some(Fig::Stall(f.fig_tpcc_spt())),
        "fig13" => Some(Fig::Stall(f.fig_index_compilation_micro(true))),
        "fig14" => Some(Fig::Stall(f.fig_index_compilation_tpcc())),
        "fig15" => Some(Fig::Stall(f.fig_data_types(true))),
        "fig16" => Some(Fig::Scalar(f.fig_mt_ipc(false))),
        "fig17" => Some(Fig::Scalar(f.fig_mt_ipc(true))),
        "fig18" => Some(Fig::Stall(f.fig_mt_spki(false))),
        "fig19" => Some(Fig::Stall(f.fig_mt_spki(true))),
        "fig20" => Some(Fig::Scalar(f.fig_ipc_vs_size(false))),
        "fig21" => Some(Fig::Stall(f.fig_spki_vs_size(false))),
        "fig22" => Some(Fig::Stall(f.fig_spt_100gb(false))),
        "fig23" => Some(Fig::Scalar(f.fig_ipc_vs_rows(false))),
        "fig24" => Some(Fig::Stall(f.fig_spki_vs_rows(false))),
        "fig25" => Some(Fig::Stall(f.fig_spt_vs_rows(false))),
        "fig26" => Some(Fig::Stall(f.fig_index_compilation_micro(false))),
        "fig27" => Some(Fig::Stall(f.fig_data_types(false))),
        "ablations" => {
            print!("{}", bench::ablations::llc_sweep());
            print!("{}", bench::ablations::prefetch());
            print!("{}", bench::ablations::simple_core());
            print!("{}", bench::ablations::voltdb_multi_partition());
            print!("{}", bench::ablations::overlap_sensitivity());
            return;
        }
        "tpce" => {
            print!("{}", bench::ablations::tpce_similarity());
            return;
        }
        "ablation-llc" => {
            print!("{}", bench::ablations::llc_sweep());
            return;
        }
        "ablation-prefetch" => {
            print!("{}", bench::ablations::prefetch());
            return;
        }
        "ablation-simplecore" => {
            print!("{}", bench::ablations::simple_core());
            return;
        }
        "ablation-voltdb-mp" => {
            print!("{}", bench::ablations::voltdb_multi_partition());
            return;
        }
        "ablation-overlap" => {
            print!("{}", bench::ablations::overlap_sensitivity());
            return;
        }
        "modules" => {
            let workload = std::env::args().nth(2).unwrap_or_else(|| "micro".into());
            for sys in bench::figures::systems() {
                let sys = match sys {
                    engines::SystemKind::DbmsM { .. } if workload == "tpcc" => {
                        engines::SystemKind::dbms_m_for_tpcc()
                    }
                    s => s,
                };
                let b = bench::modules_report::module_breakdown(sys, &workload);
                print!("{}", bench::modules_report::render(&b));
                println!();
            }
            return;
        }
        "phases" => {
            let workload = std::env::args().nth(2).unwrap_or_else(|| "micro".into());
            print!("{}", bench::trace::phases_table(&workload));
            return;
        }
        "record" => {
            record();
            return;
        }
        "diff" => {
            diff();
            return;
        }
        "cc" => {
            let p = parse_figures_args("cc", &[Spec::flag("--smoke")]);
            let smoke = p.has("--smoke");
            let cfg = if smoke {
                bench::ccgrid::CcGridCfg::smoke()
            } else {
                bench::ccgrid::CcGridCfg::full()
            };
            let rows = bench::ccgrid::run(&cfg);
            print!("{}", bench::ccgrid::render(&rows));
            // Smoke runs land beside the exemplar, never over it: the
            // committed cc_grid.csv is the full-grid reference.
            let name = if smoke {
                "cc_grid_smoke.csv"
            } else {
                "cc_grid.csv"
            };
            let out = repo_root().join("results").join(name);
            std::fs::create_dir_all(out.parent().unwrap()).expect("create results dir");
            std::fs::write(&out, bench::ccgrid::to_csv(&rows)).expect("write cc_grid.csv");
            println!("wrote {}", out.display());
            return;
        }
        "checks" => {
            for c in f.checks() {
                println!(
                    "[{}] {}: {} ({})",
                    if c.pass { "PASS" } else { "FAIL" },
                    c.figure,
                    c.claim,
                    c.detail
                );
            }
            return;
        }
        other => {
            if other != "help" {
                eprintln!("unknown subcommand: {other}");
            }
            eprintln!(
                "usage: figures <all|fig1..fig27|scaling [--smoke]|islands [--smoke]|cc [--smoke]|checks|calibrate|phases [micro|tpcb|tpcc]|modules [micro|tpcb|tpcc]|tpce|ablations|ablation-{{llc,prefetch,simplecore,voltdb-mp,overlap}}|record <system> <workload> <out.json>|diff <a.json> <b.json> [--threshold PCT]>"
            );
            std::process::exit(if other == "help" { 0 } else { 2 });
        }
    };
    if let Some(fig) = fig {
        print!("{}", fig.render_text());
    }
}

/// `figures record <system> <workload> <out.json>` — run one traced point
/// and persist it as a [`bench::diff::RunRecord`].
fn record() {
    let p = parse_figures_args("record", &[]);
    let (Some(sys_arg), Some(wl_arg), Some(out)) = (p.pos(0), p.pos(1), p.pos(2)) else {
        eprintln!("usage: figures record <system> <workload> <out.json>");
        std::process::exit(2);
    };
    let Some(system) = bench::trace::parse_system(sys_arg) else {
        eprintln!("unknown system: {sys_arg}");
        std::process::exit(2);
    };
    let Some(workload) = bench::trace::parse_workload(wl_arg) else {
        eprintln!("unknown workload: {wl_arg}");
        std::process::exit(2);
    };
    let rec = bench::diff::record_run(system, &workload, wl_arg);
    let path = PathBuf::from(out);
    rec.save(&path).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    });
    println!(
        "recorded {}/{}: {} txns, {:.0} tps, {:.2} ipc, {:.1} cycles/txn -> {}",
        rec.system,
        rec.workload,
        rec.txns,
        rec.tps,
        rec.ipc,
        rec.cycles_per_txn(),
        path.display()
    );
}

/// `figures diff <a.json> <b.json> [--threshold PCT]` — differential
/// top-down decomposition, with a CI regression gate on throughput.
fn diff() {
    let p = parse_figures_args("diff", &[Spec::value("--threshold")]);
    let (Some(a_path), Some(b_path)) = (p.pos(0), p.pos(1)) else {
        eprintln!("usage: figures diff <a.json> <b.json> [--threshold PCT]");
        std::process::exit(2);
    };
    let threshold: f64 = p
        .parsed("--threshold", "threshold")
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
        .unwrap_or(10.0);
    let load = |p: &str| {
        bench::diff::RunRecord::load(&PathBuf::from(p)).unwrap_or_else(|e| {
            eprintln!("cannot load run record: {e}");
            std::process::exit(2);
        })
    };
    let a = load(a_path);
    let b = load(b_path);
    let report = bench::diff::diff_runs(&a, &b);
    print!("{}", bench::diff::render(&report));
    if report.regressed(threshold) {
        eprintln!(
            "FAIL: candidate throughput {:.2}% below baseline (threshold {threshold}%)",
            -report.tps_change_pct()
        );
        std::process::exit(1);
    }
    println!(
        "throughput change {:+.2}% within the {threshold}% regression gate",
        report.tps_change_pct()
    );
}

fn repo_root() -> PathBuf {
    // Walk up from the executable's cwd until Cargo.toml with [workspace].
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

/// Quick calibration dump: one line per (system, size) with the key
/// metrics, for tuning engine constants against the paper's shapes.
fn calibrate() {
    use bench::figures::systems;
    use bench::{run_points, Point, WorkloadCfg};
    use workloads::DbSize;

    let mut points = Vec::new();
    for &sys in &systems() {
        for &size in &DbSize::ALL {
            points.push(Point::new(
                sys,
                WorkloadCfg::Micro {
                    size,
                    rows_per_txn: 1,
                    read_only: true,
                    strings: false,
                },
            ));
        }
    }
    let ms = run_points(&points);
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>8} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "system", "size", "IPC", "instr/txn", "tps", "L1I", "L2I", "LLCI", "L1D", "L2D", "LLCD"
    );
    for (p, m) in points.iter().zip(&ms) {
        let &WorkloadCfg::Micro { size, .. } = p.workload() else {
            unreachable!()
        };
        println!(
            "{:<10} {:>6} {:>6.2} {:>9.0} {:>8.0} | {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0}",
            p.system().label(),
            size.label(),
            m.ipc,
            m.instr_per_txn,
            m.tps,
            m.spki[0],
            m.spki[1],
            m.spki[2],
            m.spki[3],
            m.spki[4],
            m.spki[5],
        );
    }
}
