//! `bench perf` — wall-clock micro-benchmark of the simulator itself.
//!
//! Every experiment in this repo is bounded by how fast [`uarch_sim`]
//! retires simulated accesses, so this benchmark times the simulator's own
//! hot paths (not any engine): pure L1-hit loads on one core, a mixed
//! transaction-like shape (instruction fetch + reads + a store), and the
//! same mixed shape on every core concurrently. Results go to
//! `results/perf.json`; `--check <baseline.json>` fails the process when
//! throughput regresses more than 30% against a recorded baseline, which
//! is how CI guards the fast path.
//!
//! The simulated work per iteration is fixed and deterministic — only the
//! wall-clock time varies between runs — so numbers are comparable across
//! commits as long as the shapes below stay untouched.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use obs::json::{self, Json};
use uarch_sim::rng::XorShift64;
use uarch_sim::{BatchOp, MachineConfig, ModuleSpec, Sim};

/// Cores exercised by the multi-core section.
const MULTI_CORES: usize = 4;

/// One timed section of the benchmark.
#[derive(Clone, Debug)]
pub struct Section {
    pub name: &'static str,
    /// Simulated data accesses (loads + stores) issued.
    pub accesses: u64,
    /// Simulated instructions retired.
    pub instructions: u64,
    pub wall_secs: f64,
}

impl Section {
    pub fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.wall_secs
    }

    pub fn instr_per_sec(&self) -> f64 {
        self.instructions as f64 / self.wall_secs
    }
}

/// Full benchmark result.
#[derive(Clone, Debug)]
pub struct PerfReport {
    pub sections: Vec<Section>,
}

impl PerfReport {
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Render as JSON via the shared [`obs::json`] writer (one schema,
    /// one set of escaping/number rules across every artifact).
    pub fn to_json(&self) -> String {
        Json::obj(vec![(
            "sections",
            Json::Arr(
                self.sections
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", Json::str(s.name)),
                            ("accesses", Json::u64(s.accesses)),
                            ("instructions", Json::u64(s.instructions)),
                            ("wall_secs", Json::Num(s.wall_secs)),
                            ("accesses_per_sec", Json::Num(s.accesses_per_sec())),
                            ("instr_per_sec", Json::Num(s.instr_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        )])
        .render()
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>16} {:>10}",
            "section", "accesses/sec", "instr/sec", "wall"
        );
        for s in &self.sections {
            let _ = writeln!(
                out,
                "{:<18} {:>14.0} {:>16.0} {:>9.0}ms",
                s.name,
                s.accesses_per_sec(),
                s.instr_per_sec(),
                s.wall_secs * 1e3
            );
        }
        out
    }
}

fn time_section(name: &'static str, accesses: u64, instructions: u64, f: impl FnOnce()) -> Section {
    let t0 = Instant::now();
    f();
    Section {
        name,
        accesses,
        instructions,
        wall_secs: t0.elapsed().as_secs_f64().max(1e-9),
    }
}

/// Pure L1-hit loads on one core: a 16 KB buffer that stays L1D-resident,
/// read one line at a time. This is the simulator's absolute fast path.
fn l1_hit_loads(iters: u64) -> Section {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    // Hold the core's port, as engine sessions do: the timed loop runs on
    // the lock-free ported path.
    let _port = sim.checkout(0);
    let buf = sim.alloc(16 << 10, 64);
    let mem = sim.mem(0);
    // Warm the buffer so the timed loop only ever hits.
    for off in (0..(16u64 << 10)).step_by(64) {
        mem.read(buf + off, 8);
    }
    let lines = (16u64 << 10) / 64;
    time_section("l1_hit_loads", iters, 0, || {
        let mut off = 0u64;
        for _ in 0..iters {
            mem.read(buf + off * 64, 8);
            off += 1;
            if off == lines {
                off = 0;
            }
        }
    })
}

/// Transaction-like mix on one core: per iteration, one `exec` burst on a
/// 24 KB module, four random reads over 1 MB, and one store over 64 KB.
fn mixed_shape(sim: &Sim, core: usize, iters: u64, seed: u64) -> (u64, u64) {
    // Engine sessions hold their core's port; measure the same path.
    let _port = sim.try_checkout(core);
    let module = sim.register_module(
        ModuleSpec::new(format!("perf/mix-{core}"), 24 << 10)
            .reuse(2.5)
            .branchiness(0.1),
    );
    let read_region = sim.alloc(1 << 20, 64);
    let write_region = sim.alloc(64 << 10, 64);
    let mem = sim.mem(core).with_module(module);
    let mut rng = XorShift64::new(seed);
    for _ in 0..iters {
        // One transaction = one batched commit: a single core acquisition
        // (and coherence-queue drain) covers all six ops, the way engine
        // hot loops are expected to use the simulator. Event accounting is
        // identical to issuing the ops separately.
        let r = |rng: &mut XorShift64| read_region + rng.next_below((1 << 20) / 64) * 64;
        let ops = [
            BatchOp::Exec(60),
            BatchOp::Read {
                addr: r(&mut rng),
                len: 8,
            },
            BatchOp::Read {
                addr: r(&mut rng),
                len: 8,
            },
            BatchOp::Read {
                addr: r(&mut rng),
                len: 8,
            },
            BatchOp::Read {
                addr: r(&mut rng),
                len: 8,
            },
            BatchOp::Write {
                addr: write_region + rng.next_below((64 << 10) / 64) * 64,
                len: 8,
            },
        ];
        mem.run_ops(&ops);
    }
    (iters * 5, iters * 60)
}

fn mixed_single(iters: u64) -> Section {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut work = (0, 0);
    let mut run = || work = mixed_shape(&sim, 0, iters, 0x5EED);
    let t0 = Instant::now();
    run();
    Section {
        name: "mixed_1core",
        accesses: work.0,
        instructions: work.1,
        wall_secs: t0.elapsed().as_secs_f64().max(1e-9),
    }
}

/// The mixed shape on [`MULTI_CORES`] cores concurrently, sharing one
/// machine: exercises LLC sharing and store-driven coherence.
fn mixed_multi(iters_per_core: u64) -> Section {
    let sim = Sim::new(MachineConfig::ivy_bridge(MULTI_CORES));
    let t0 = Instant::now();
    let per_core: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..MULTI_CORES)
            .map(|core| {
                let sim = sim.clone();
                scope.spawn(move || mixed_shape(&sim, core, iters_per_core, 0x5EED + core as u64))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    Section {
        name: "mixed_multicore",
        accesses: per_core.iter().map(|w| w.0).sum(),
        instructions: per_core.iter().map(|w| w.1).sum(),
        wall_secs: wall,
    }
}

/// The mixed shape on a two-socket machine ([`MULTI_CORES`] cores split
/// across two LLCs), with every allocation homed on socket 0 so socket 1's
/// cores take the cross-socket fill path on each LLC miss: times the NUMA
/// home classification and remote-access charging on top of the coherence
/// machinery `mixed_multicore` already covers.
fn mixed_numa(iters_per_core: u64) -> Section {
    let sim = Sim::new(MachineConfig::numa(2, MULTI_CORES / 2));
    // First-touch everything on socket 0 (the worst half-remote case).
    sim.set_default_home(Some(0));
    let t0 = Instant::now();
    let per_core: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..MULTI_CORES)
            .map(|core| {
                let sim = sim.clone();
                scope.spawn(move || mixed_shape(&sim, core, iters_per_core, 0x5EED + core as u64))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    Section {
        name: "mixed_numa",
        accesses: per_core.iter().map(|w| w.0).sum(),
        instructions: per_core.iter().map(|w| w.1).sum(),
        wall_secs: wall,
    }
}

/// Run the benchmark. Smoke mode shrinks every section ~20x so CI finishes
/// in well under a second.
pub fn run(smoke: bool) -> PerfReport {
    let scale = if smoke { 20 } else { 1 };
    let sections = vec![
        l1_hit_loads(20_000_000 / scale),
        mixed_single(1_500_000 / scale),
        mixed_multi(600_000 / scale),
        mixed_numa(600_000 / scale),
    ];
    PerfReport { sections }
}

/// Extract `(name, accesses_per_sec)` pairs from a perf JSON file written
/// by [`PerfReport::to_json`] (or any earlier hand-rolled baseline — the
/// schema is unchanged). A malformed document yields no rates, which the
/// caller reports as a missing-section mismatch rather than a panic.
fn parse_rates(text: &str) -> Vec<(String, f64)> {
    let Ok(doc) = json::parse(text) else {
        return Vec::new();
    };
    let Some(sections) = doc.get("sections").and_then(|s| s.as_arr()) else {
        return Vec::new();
    };
    sections
        .iter()
        .filter_map(|s| {
            let name = s.get("name")?.as_str()?.to_string();
            let rate = s.get("accesses_per_sec")?.as_f64()?;
            Some((name, rate))
        })
        .collect()
}

/// Compare `report` against a baseline JSON on disk. Returns the list of
/// sections whose accesses/sec dropped below `floor` (e.g. 0.7 = fail on a
/// >30% regression). A missing baseline section is ignored.
pub fn regressions(report: &PerfReport, baseline_path: &Path, floor: f64) -> Vec<String> {
    let Ok(json) = std::fs::read_to_string(baseline_path) else {
        return vec![format!(
            "baseline not readable: {}",
            baseline_path.display()
        )];
    };
    let mut bad = Vec::new();
    for (name, base_rate) in parse_rates(&json) {
        let Some(sec) = report.section(&name) else {
            continue;
        };
        let now = sec.accesses_per_sec();
        if base_rate > 0.0 && now < base_rate * floor {
            bad.push(format!(
                "{name}: {now:.0} accesses/sec < {:.0}% of baseline {base_rate:.0}",
                floor * 100.0
            ));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips_rates() {
        let r = PerfReport {
            sections: vec![Section {
                name: "l1_hit_loads",
                accesses: 1000,
                instructions: 0,
                wall_secs: 0.5,
            }],
        };
        let rates = parse_rates(&r.to_json());
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, "l1_hit_loads");
        assert!((rates[0].1 - 2000.0).abs() < 1.0);
    }

    #[test]
    fn smoke_run_produces_all_sections() {
        let r = run(true);
        assert!(r.section("l1_hit_loads").is_some());
        assert!(r.section("mixed_1core").is_some());
        assert!(r.section("mixed_multicore").is_some());
        assert!(r.section("mixed_numa").is_some());
        for s in &r.sections {
            assert!(s.accesses_per_sec() > 0.0);
        }
    }
}
