//! `bench trace` — run one (system, workload) point with the tracing
//! layer enabled and export the span stream as Chrome/Perfetto trace JSON
//! and JSONL, plus a per-phase breakdown table.
//!
//! This is the only place in the harness that installs a [`obs::Tracer`];
//! every other path runs with tracing disabled and is bit-identical to a
//! build without the `obs` crate wired in.

use std::fs;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use engines::{build_system, SystemKind};
use microarch::{measure, measure_workers, Measurement, Pacing};
use obs::flame::StallComponent;
use obs::sink::{JsonlSink, PerfettoSink, VecSink};
use obs::{Phase, Tracer};
use uarch_sim::{EventCounts, MachineConfig, Sim};
use workloads::DbSize;

use crate::WorkloadCfg;

/// Parse a CLI system name (`shore-mt`, `dbmsd`, `voltdb`, `hyper`,
/// `dbmsm`, `dbmsm-interp`, `dbmsm-btree`).
pub fn parse_system(s: &str) -> Option<SystemKind> {
    use engines::DbmsMIndex;
    match s.to_ascii_lowercase().replace(['_', ' '], "-").as_str() {
        "shore" | "shoremt" | "shore-mt" => Some(SystemKind::ShoreMt),
        "dbmsd" | "dbms-d" => Some(SystemKind::DbmsD),
        "voltdb" => Some(SystemKind::VoltDb),
        "hyper" => Some(SystemKind::HyPer),
        "dbmsm" | "dbms-m" => Some(SystemKind::DbmsM {
            index: DbmsMIndex::Hash,
            compiled: true,
        }),
        "dbmsm-interp" => Some(SystemKind::DbmsM {
            index: DbmsMIndex::Hash,
            compiled: false,
        }),
        "dbmsm-btree" => Some(SystemKind::dbms_m_for_tpcc()),
        _ => None,
    }
}

/// Parse a CLI workload name (`micro`, `micro-rw`, `tpcb`, `tpcc`,
/// `tpce`).
pub fn parse_workload(s: &str) -> Option<WorkloadCfg> {
    match s.to_ascii_lowercase().replace(['_', ' '], "-").as_str() {
        "micro" => Some(WorkloadCfg::Micro {
            size: DbSize::Gb10,
            rows_per_txn: 1,
            read_only: true,
            strings: false,
        }),
        "micro-rw" => Some(WorkloadCfg::Micro {
            size: DbSize::Gb10,
            rows_per_txn: 1,
            read_only: false,
            strings: false,
        }),
        "tpcb" => Some(WorkloadCfg::TpcB),
        "tpcc" => Some(WorkloadCfg::TpcC),
        "tpce" => Some(WorkloadCfg::TpcE),
        _ => None,
    }
}

/// File-name slug for a system label ("Shore-MT" -> "shore_mt").
fn slug(label: &str) -> String {
    label.to_ascii_lowercase().replace([' ', '-'], "_")
}

/// Result of a traced run: the measurement plus the export paths.
pub struct TraceArtifacts {
    /// The windowed measurement (includes the per-phase breakdown).
    pub measurement: Measurement,
    /// Chrome/Perfetto `trace_event` JSON (load in ui.perfetto.dev).
    pub perfetto: PathBuf,
    /// One span record per line.
    pub jsonl: PathBuf,
    /// Collapsed-stack flamegraph (`--flame` only).
    pub folded: Option<PathBuf>,
    /// Total weight of the folded stacks — by construction equal to the
    /// selected component's stall cycles counted over the traced period.
    pub flame_total: Option<u64>,
}

/// Run one traced point on a single core. The tracer is installed only
/// for the duration of the run; `Phase::Txn` root spans are opened by
/// this driver around every transaction, and the engine opens the inner
/// phase spans itself.
pub fn run_trace(
    system: SystemKind,
    workload: &WorkloadCfg,
    wl_name: &str,
    out_dir: &Path,
) -> TraceArtifacts {
    run_trace_workers(system, workload, wl_name, out_dir, 1)
}

/// Run one traced point with `workers` parallel sessions. With one worker
/// this is the exact single-threaded tracing path; with more, every worker
/// thread installs its own thread-local [`Tracer`] feeding an in-memory
/// sink, and after the workers join the per-thread span streams are merged
/// by simulated timestamp and replayed through a harness tracer that owns
/// the Perfetto/JSONL exports — one coherent trace file across all cores.
pub fn run_trace_workers(
    system: SystemKind,
    workload: &WorkloadCfg,
    wl_name: &str,
    out_dir: &Path,
    workers: usize,
) -> TraceArtifacts {
    run_trace_flame(system, workload, wl_name, out_dir, workers, None)
}

/// [`run_trace_workers`] that additionally folds the span stream into a
/// stall-weighted collapsed-stack flamegraph when `flame` selects a
/// component. The fold's weights plus per-core `(untraced)` residuals sum
/// exactly to the component's stall cycles counted over the traced period
/// (counters snapshotted around the run), which
/// [`TraceArtifacts::flame_total`] reports.
pub fn run_trace_flame(
    system: SystemKind,
    workload: &WorkloadCfg,
    wl_name: &str,
    out_dir: &Path,
    workers: usize,
    flame: Option<StallComponent>,
) -> TraceArtifacts {
    fs::create_dir_all(out_dir).expect("create trace output dir");
    let sys_slug = slug(system.label());
    let perfetto = out_dir.join(format!("trace_{sys_slug}_{wl_name}.perfetto.json"));
    let jsonl = out_dir.join(format!("trace_{sys_slug}_{wl_name}.jsonl"));

    let sim = Sim::new(MachineConfig::ivy_bridge(workers));
    let mut db = build_system(system, &sim, workers);
    let mut w = workload.build();
    sim.offline(|| w.setup(db.as_mut(), workers));
    sim.warm_data();
    let engine: &'static str = db.name();
    let window = workload.window();
    let clock_ghz = sim.config().clock_ghz;

    let file_sinks = |tracer: &Tracer| {
        let pf = fs::File::create(&perfetto).expect("create perfetto file");
        tracer.add_sink(Box::new(PerfettoSink::new(
            Box::new(BufWriter::new(pf)),
            clock_ghz,
        )));
        let jf = fs::File::create(&jsonl).expect("create jsonl file");
        tracer.add_sink(Box::new(JsonlSink::new(Box::new(BufWriter::new(jf)))));
    };

    // Counter baseline for the flame window: every span the tracer will
    // record falls between this snapshot and the one taken after the run,
    // so the per-core residual (window minus span self weights) is the
    // true untraced remainder.
    let flame_start: Vec<EventCounts> = sim.counters_all();
    let mut flame_records: Option<Vec<obs::SpanRecord>> = None;

    let measurement = if workers == 1 {
        let tracer = Tracer::new(&sim);
        file_sinks(&tracer);
        let rec_sink = VecSink::new();
        if flame.is_some() {
            tracer.add_sink(Box::new(rec_sink.clone()));
        }
        obs::install(tracer);

        let mut s = db.session(0);
        let measurement = measure(&sim, 0, window, |_| {
            let _t = obs::span(engine, Phase::Txn, 0);
            w.exec(s.as_mut(), 0).expect("trace transaction failed");
        });

        drop(s);
        let tracer = obs::uninstall().expect("tracer still installed");
        tracer.finish();
        if flame.is_some() {
            flame_records = Some(rec_sink.take());
        }
        measurement
    } else {
        let cores: Vec<usize> = (0..workers).collect();
        let sinks: Vec<VecSink> = (0..workers).map(|_| VecSink::new()).collect();
        let w = Mutex::new(w);
        let measurement = {
            let db = &*db;
            let w = &w;
            let sim_handle = &sim;
            let sinks = &sinks;
            measure_workers(&sim, &cores, window, Pacing::Lockstep, |worker| {
                let mut s = db.session(worker);
                let sink = sinks[worker].clone();
                let sim = sim_handle.clone();
                let mut installed = false;
                move |_| {
                    if !installed {
                        // Tracers are thread-local; install this worker's on
                        // its own thread, on the first turn it executes.
                        let tracer = Tracer::new(&sim);
                        tracer.add_sink(Box::new(sink.clone()));
                        obs::install(tracer);
                        installed = true;
                    }
                    let _t = obs::span(engine, Phase::Txn, worker);
                    w.lock()
                        .unwrap()
                        .exec(s.as_mut(), worker)
                        .expect("trace transaction failed");
                }
            })
        };
        let merged = obs::merge_span_streams(sinks.iter().map(|s| s.take()).collect());
        let tracer = Tracer::new(&sim);
        file_sinks(&tracer);
        for rec in &merged {
            tracer.ingest(rec);
        }
        tracer.finish();
        if flame.is_some() {
            flame_records = Some(merged);
        }
        measurement
    };

    let (folded_path, flame_total) = match (flame, flame_records) {
        (Some(comp), Some(records)) => {
            let cfg = sim.config();
            let mut folded = obs::flame::fold(&records, &cfg, comp);
            let window_by_core: Vec<(usize, EventCounts)> = sim
                .counters_all()
                .into_iter()
                .enumerate()
                .map(|(core, end)| (core, end.delta(&flame_start[core])))
                .collect();
            obs::flame::add_untraced(&mut folded, &cfg, comp, &window_by_core);
            let path = out_dir.join(format!(
                "trace_{sys_slug}_{wl_name}.{}.folded",
                comp.label()
            ));
            fs::write(&path, obs::flame::render(&folded)).expect("write folded stacks");
            (Some(path), Some(obs::flame::total_weight(&folded)))
        }
        _ => (None, None),
    };

    TraceArtifacts {
        measurement,
        perfetto,
        jsonl,
        folded: folded_path,
        flame_total,
    }
}

/// Render the per-phase table + per-transaction histogram summary for one
/// traced measurement.
pub fn render(m: &Measurement, title: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== per-phase breakdown: {title} ==");
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>11} {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
        "phase", "spans", "instr", "share", "L1I", "L2I", "LLCI", "L1D", "L2D", "LLCD", "SPKI"
    );
    for p in &m.phases {
        let _ = writeln!(
            out,
            "{:<22} {:>9} {:>11} {:>6.1}% | {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>7.1}",
            format!("{}:{}", p.engine, p.phase),
            p.count,
            p.counts.instructions,
            p.share * 100.0,
            p.spki[0],
            p.spki[1],
            p.spki[2],
            p.spki[3],
            p.spki[4],
            p.spki[5],
            p.spki.iter().sum::<f64>(),
        );
    }
    let un = m.phase_unattributed();
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>11}   (driver glue outside any span)",
        "<unattributed>", "-", un.instructions
    );
    if let Some(h) = &m.txn_hists {
        let _ = writeln!(
            out,
            "-- per-transaction histograms (window of {} txns) --",
            h.instructions.count()
        );
        let row = |name: &str, hist: &obs::hist::Histogram| {
            format!(
                "{:<22} {:>9.0} {:>9} {:>9} {:>9} {:>9}",
                name,
                hist.mean(),
                hist.quantile(0.50),
                hist.quantile(0.90),
                hist.quantile(0.99),
                hist.max()
            )
        };
        let _ = writeln!(
            out,
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "metric", "mean", "p50", "p90", "p99", "max"
        );
        let _ = writeln!(out, "{}", row("instructions/txn", &h.instructions));
        let _ = writeln!(out, "{}", row("cycles/txn", &h.cycles));
        for (i, label) in obs::stall_labels().iter().enumerate() {
            if h.misses[i].count() > 0 && h.misses[i].max() > 0 {
                let _ = writeln!(out, "{}", row(&format!("{label} misses/txn"), &h.misses[i]));
            }
        }
    }
    out
}

/// `figures phases` — per-phase total SPKI for every system on one
/// workload, as a compact grid. Runs sequentially because the tracer is
/// thread-local.
pub fn phases_table(workload: &str) -> String {
    use std::fmt::Write as _;
    let cfg = parse_workload(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload:?}, defaulting to micro");
        parse_workload("micro").unwrap()
    });
    let phases = Phase::ALL;
    let mut out = String::new();
    let _ = writeln!(out, "== per-phase SPKI ({workload}; stall cycles per k-instr of the window attributed to each phase's own work) ==");
    let _ = write!(out, "{:<10}", "system");
    for p in phases {
        let _ = write!(out, " {:>9}", p.label());
    }
    let _ = writeln!(out, " {:>9}", "<none>");
    let tmp = std::env::temp_dir().join("imoltp_phases");
    for sys in crate::figures::systems() {
        let sys = match (sys, workload) {
            (SystemKind::DbmsM { .. }, "tpcc" | "tpce") => SystemKind::dbms_m_for_tpcc(),
            (s, _) => s,
        };
        let art = run_trace(sys, &cfg, workload, &tmp);
        let m = &art.measurement;
        let k_instr = m.counts.instructions as f64 / 1000.0;
        let _ = write!(out, "{:<10}", sys.label());
        for ph in phases {
            let spki: f64 = m
                .phases
                .iter()
                .filter(|b| b.phase == ph.label())
                .map(|b| b.spki.iter().sum::<f64>())
                .sum();
            // `+ 0.0` normalizes the -0.0 an empty sum yields.
            let _ = write!(out, " {:>9.1}", spki + 0.0);
        }
        // Stalls outside every span (driver glue), per k-instr.
        let cfg_m = MachineConfig::ivy_bridge(1);
        let un = m.phase_unattributed();
        let un_spki: f64 = if k_instr > 0.0 {
            cfg_m.stall_cycles(&un).iter().sum::<f64>() / k_instr
        } else {
            0.0
        };
        let _ = writeln!(out, " {:>9.1}", un_spki);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(parse_system("voltdb"), Some(SystemKind::VoltDb));
        assert_eq!(parse_system("Shore-MT"), Some(SystemKind::ShoreMt));
        assert!(parse_system("oracle").is_none());
        assert!(parse_workload("tpcc").is_some());
        assert!(parse_workload("nope").is_none());
    }

    #[test]
    fn traced_micro_run_produces_phases_and_files() {
        let dir = std::env::temp_dir().join("imoltp_trace_test");
        let cfg = WorkloadCfg::Micro {
            size: DbSize::Mb1,
            rows_per_txn: 1,
            read_only: false,
            strings: false,
        };
        let art = run_trace(SystemKind::HyPer, &cfg, "micro", &dir);
        let m = &art.measurement;
        assert!(
            !m.phases.is_empty(),
            "traced run must carry phase breakdowns"
        );
        // The span self-counts partition the window: phases + unattributed
        // sum exactly to the window instruction total.
        let span_instr: u64 = m.phases.iter().map(|p| p.counts.instructions).sum();
        let total = span_instr + m.phase_unattributed().instructions;
        assert_eq!(total, m.counts.instructions);
        // A Txn root span exists and covers every measured transaction.
        let txn = m
            .phases
            .iter()
            .find(|p| p.phase == "txn")
            .expect("txn phase");
        assert_eq!(txn.count, m.txns);
        // Exports exist and the Perfetto one parses as JSON.
        let perfetto = std::fs::read_to_string(&art.perfetto).unwrap();
        let doc = obs::json::parse(&perfetto).expect("perfetto JSON parses");
        assert!(doc.get("traceEvents").is_some());
        assert!(std::fs::metadata(&art.jsonl).unwrap().len() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flame_export_total_matches_measured_stall_cycles() {
        let dir = std::env::temp_dir().join("imoltp_trace_flame_test");
        let cfg = WorkloadCfg::Micro {
            size: DbSize::Mb1,
            rows_per_txn: 1,
            read_only: false,
            strings: false,
        };
        let comp = StallComponent::Total;
        let art = run_trace_flame(SystemKind::VoltDb, &cfg, "micro", &dir, 1, Some(comp));
        let folded = art.folded.expect("folded path");
        let total = art.flame_total.expect("flame total");
        assert!(total > 0, "a traced run must accumulate stall cycles");
        // The acceptance invariant: the collapsed-stack file's total
        // weight equals the run's measured stall cycles for the selected
        // component — every line parses and the weights sum back exactly.
        let text = std::fs::read_to_string(&folded).unwrap();
        let parsed: u64 = text
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(parsed, total);
        // Span frames from the engine appear under the core root.
        assert!(
            text.lines().any(|l| l.starts_with("core0;VoltDB:txn")),
            "folded stacks carry engine span frames:\n{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_worker_trace_merges_per_thread_streams() {
        let dir = std::env::temp_dir().join("imoltp_trace_mt_test");
        let cfg = WorkloadCfg::Micro {
            size: DbSize::Mb1,
            rows_per_txn: 1,
            read_only: false,
            strings: false,
        };
        let art = run_trace_workers(SystemKind::VoltDb, &cfg, "micro_mt", &dir, 2);
        let m = &art.measurement;
        assert!(!m.phases.is_empty(), "merged run must carry phases");
        let txn = m
            .phases
            .iter()
            .find(|p| p.phase == "txn")
            .expect("txn phase");
        assert_eq!(txn.count, m.txns);
        // The merged Perfetto document contains spans from both cores and
        // stays timestamp-ordered despite interleaved per-thread streams.
        let perfetto = std::fs::read_to_string(&art.perfetto).unwrap();
        let doc = obs::json::parse(&perfetto).expect("perfetto JSON parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut cores = std::collections::BTreeSet::new();
        let mut last_ts = f64::NEG_INFINITY;
        for e in events {
            if let Some(t) = e.get("tid").and_then(|t| t.as_f64()) {
                cores.insert(t as u64);
            }
            if let Some(ts) = e.get("ts").and_then(|t| t.as_f64()) {
                assert!(ts >= last_ts, "timestamps must be non-decreasing");
                last_ts = ts;
            }
        }
        assert!(
            cores.contains(&0) && cores.contains(&1),
            "spans from both cores: {cores:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
