//! `figures diff` — differential top-down regression analysis between two
//! recorded runs.
//!
//! A [`RunRecord`] captures one measured (system, workload) point as the
//! paper's §4 raw material: per-phase self counter deltas (the span
//! partition of the measured window, plus the `(unattributed)` remainder)
//! and the cycle-model constants in force. Because the cycle model is
//! linear in the counters,
//!
//! ```text
//! cycles = instr/ideal_ipc + mispredicts*P_br + store_misses*P_sb
//!        + sum_e misses[e] * penalty[e] * overlap[e]
//! ```
//!
//! the cycles-per-transaction of a run decomposes *exactly* into
//! phase x component contributions, and the difference between two runs
//! decomposes into per-cell deltas that sum back to the total
//! cycles-per-txn delta — the invariant the tests pin down. The analyzer
//! ranks those cells so a regression report reads "DBMS D:storage llc-d
//! +312 cycles/txn" instead of "it got slower".

use std::fs;
use std::path::Path;

use engines::SystemKind;
use obs::counts_json;
use obs::json::{self, Json};
use uarch_sim::counters::{EventCounts, StallEvent};
use uarch_sim::MachineConfig;

use crate::WorkloadCfg;

/// Store-buffer pressure penalty of the cycle model (cycles per store
/// miss) — mirrored from [`MachineConfig::cycles`], which hard-codes it.
const STORE_MISS_PENALTY: f64 = 12.0;

/// Phase name of the synthetic bucket holding window activity outside
/// every span (driver glue).
pub const UNATTRIBUTED: &str = "(unattributed)";

/// The cycle-model constants a run was scored with. Persisted so a diff
/// between runs recorded under different models still sums correctly
/// (each side is decomposed with its own constants).
#[derive(Clone, Debug, PartialEq)]
pub struct Model {
    pub ideal_ipc: f64,
    pub mispredict_penalty: f64,
    pub store_miss_penalty: f64,
    /// Per-class miss penalty, [`StallEvent::ALL`] order.
    pub penalties: [f64; 6],
    /// Per-class stall overlap factor, [`StallEvent::ALL`] order.
    pub overlap: [f64; 6],
}

impl Model {
    pub fn from_config(cfg: &MachineConfig) -> Model {
        let mut penalties = [0.0; 6];
        let mut overlap = [0.0; 6];
        for (i, &e) in StallEvent::ALL.iter().enumerate() {
            penalties[i] = f64::from(cfg.penalty(e));
            overlap[i] = cfg.overlap.get(e);
        }
        Model {
            ideal_ipc: cfg.ideal_ipc,
            mispredict_penalty: cfg.mispredict_penalty,
            store_miss_penalty: STORE_MISS_PENALTY,
            penalties,
            overlap,
        }
    }
}

/// Decomposition component labels: retire slots first, then the two
/// non-bar penalty terms, then the six stall classes.
pub const COMPONENTS: [&str; 9] = [
    "retire",
    "mispredict",
    "store-buf",
    "l1i",
    "l2i",
    "llc-i",
    "l1d",
    "l2d",
    "llc-d",
];

/// The per-component cycle contributions of one counter delta under a
/// model, [`COMPONENTS`] order. Sums to the model's `cycles(c)`.
pub fn components(model: &Model, c: &EventCounts) -> [f64; 9] {
    let mut out = [0.0; 9];
    out[0] = c.instructions as f64 / model.ideal_ipc;
    out[1] = c.mispredicts as f64 * model.mispredict_penalty;
    out[2] = c.store_misses as f64 * model.store_miss_penalty;
    for i in 0..6 {
        out[3 + i] = c.misses[i] as f64 * model.penalties[i] * model.overlap[i];
    }
    out
}

/// One phase's slice of a recorded run: the span self-count partition
/// cell, keyed by `engine:phase`.
#[derive(Clone, Debug)]
pub struct PhaseCounts {
    pub engine: String,
    pub phase: String,
    pub count: u64,
    pub counts: EventCounts,
}

/// A recorded run: everything `figures diff` needs, serialized to JSON.
#[derive(Clone, Debug)]
pub struct RunRecord {
    pub system: String,
    pub workload: String,
    pub txns: u64,
    pub tps: f64,
    pub ipc: f64,
    pub model: Model,
    /// Self-count partition of the measured window, including the
    /// [`UNATTRIBUTED`] bucket; sums to the window counters.
    pub phases: Vec<PhaseCounts>,
}

impl RunRecord {
    /// Build a record from a traced measurement.
    pub fn from_measurement(
        system: &str,
        workload: &str,
        cfg: &MachineConfig,
        m: &microarch::Measurement,
    ) -> RunRecord {
        let mut phases: Vec<PhaseCounts> = m
            .phases
            .iter()
            .map(|p| PhaseCounts {
                engine: p.engine.clone(),
                phase: p.phase.clone(),
                count: p.count,
                counts: p.counts.clone(),
            })
            .collect();
        phases.push(PhaseCounts {
            engine: system.to_string(),
            phase: UNATTRIBUTED.to_string(),
            count: 0,
            counts: m.phase_unattributed(),
        });
        RunRecord {
            system: system.to_string(),
            workload: workload.to_string(),
            txns: m.txns,
            tps: m.tps,
            ipc: m.ipc,
            model: Model::from_config(cfg),
            phases,
        }
    }

    /// Total modeled cycles per transaction, computed from the phase
    /// partition itself (so diffs telescope exactly).
    pub fn cycles_per_txn(&self) -> f64 {
        let total: f64 = self
            .phases
            .iter()
            .map(|p| components(&self.model, &p.counts).iter().sum::<f64>())
            .sum();
        total / self.txns.max(1) as f64
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("system", Json::str(&self.system)),
            ("workload", Json::str(&self.workload)),
            ("txns", Json::u64(self.txns)),
            ("tps", Json::Num(self.tps)),
            ("ipc", Json::Num(self.ipc)),
            (
                "model",
                Json::obj(vec![
                    ("ideal_ipc", Json::Num(self.model.ideal_ipc)),
                    (
                        "mispredict_penalty",
                        Json::Num(self.model.mispredict_penalty),
                    ),
                    (
                        "store_miss_penalty",
                        Json::Num(self.model.store_miss_penalty),
                    ),
                    (
                        "penalties",
                        Json::Arr(self.model.penalties.iter().map(|&p| Json::Num(p)).collect()),
                    ),
                    (
                        "overlap",
                        Json::Arr(self.model.overlap.iter().map(|&o| Json::Num(o)).collect()),
                    ),
                ]),
            ),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("engine", Json::str(&p.engine)),
                                ("phase", Json::str(&p.phase)),
                                ("count", Json::u64(p.count)),
                                ("counts", counts_json(&p.counts)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a record back from its JSON form. Returns a description of
    /// the first malformed field on failure.
    pub fn from_json(v: &Json) -> Result<RunRecord, String> {
        let str_field = |v: &Json, k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(|s| s.as_str().map(str::to_string))
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let num_field = |v: &Json, k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(|n| n.as_f64())
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        let arr6 = |v: &Json, k: &str| -> Result<[f64; 6], String> {
            let arr = v
                .get(k)
                .and_then(|a| a.as_arr())
                .ok_or_else(|| format!("missing array field {k:?}"))?;
            if arr.len() != 6 {
                return Err(format!("field {k:?} must have 6 entries"));
            }
            let mut out = [0.0; 6];
            for (i, e) in arr.iter().enumerate() {
                out[i] = e
                    .as_f64()
                    .ok_or_else(|| format!("{k:?}[{i}] not a number"))?;
            }
            Ok(out)
        };
        let model_v = v.get("model").ok_or("missing field \"model\"")?;
        let model = Model {
            ideal_ipc: num_field(model_v, "ideal_ipc")?,
            mispredict_penalty: num_field(model_v, "mispredict_penalty")?,
            store_miss_penalty: num_field(model_v, "store_miss_penalty")?,
            penalties: arr6(model_v, "penalties")?,
            overlap: arr6(model_v, "overlap")?,
        };
        let parse_counts = |v: &Json| -> Result<EventCounts, String> {
            let u = |k: &str| -> Result<u64, String> { num_field(v, k).map(|n| n as u64) };
            let misses_a = arr6(v, "misses")?;
            let mut misses = [0u64; 6];
            for (i, m) in misses.iter_mut().enumerate() {
                *m = misses_a[i] as u64;
            }
            Ok(EventCounts {
                instructions: u("instructions")?,
                code_fetches: u("code_fetches")?,
                loads: u("loads")?,
                stores: u("stores")?,
                misses,
                mispredicts: u("mispredicts")?,
                store_misses: u("store_misses")?,
                invalidations: u("invalidations")?,
                // Absent from records written before the NUMA topology
                // landed; default to zero so old runs keep loading.
                remote_accesses: u("remote_accesses").unwrap_or(0),
            })
        };
        let phases_v = v
            .get("phases")
            .and_then(|a| a.as_arr())
            .ok_or("missing array field \"phases\"")?;
        let mut phases = Vec::with_capacity(phases_v.len());
        for p in phases_v {
            phases.push(PhaseCounts {
                engine: str_field(p, "engine")?,
                phase: str_field(p, "phase")?,
                count: num_field(p, "count")? as u64,
                counts: parse_counts(p.get("counts").ok_or("phase missing \"counts\"")?)?,
            });
        }
        Ok(RunRecord {
            system: str_field(v, "system")?,
            workload: str_field(v, "workload")?,
            txns: num_field(v, "txns")? as u64,
            tps: num_field(v, "tps")?,
            ipc: num_field(v, "ipc")?,
            model,
            phases,
        })
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_json().render())
    }

    pub fn load(path: &Path) -> Result<RunRecord, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        RunRecord::from_json(&v)
    }
}

/// Run one traced point and capture it as a [`RunRecord`] (the
/// `figures record` subcommand). Trace artifacts land in a temp dir; only
/// the record is kept.
pub fn record_run(system: SystemKind, workload: &WorkloadCfg, wl_name: &str) -> RunRecord {
    let tmp = std::env::temp_dir().join("imoltp_record");
    let art = crate::trace::run_trace(system, workload, wl_name, &tmp);
    let cfg = MachineConfig::ivy_bridge(1);
    RunRecord::from_measurement(system.label(), wl_name, &cfg, &art.measurement)
}

/// One ranked cell of the differential decomposition: the cycles-per-txn
/// this phase x component contributed in each run, and the delta.
#[derive(Clone, Debug)]
pub struct DiffRow {
    pub engine: String,
    pub phase: String,
    pub component: &'static str,
    /// Cycles/txn in the baseline run.
    pub a: f64,
    /// Cycles/txn in the candidate run.
    pub b: f64,
    /// `b - a`; positive means the candidate got slower here.
    pub delta: f64,
}

/// The full differential report of [`diff_runs`].
#[derive(Clone, Debug)]
pub struct DiffReport {
    pub a_label: String,
    pub b_label: String,
    pub cpt_a: f64,
    pub cpt_b: f64,
    pub tps_a: f64,
    pub tps_b: f64,
    /// All non-zero cells, ranked by |delta| descending.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Total cycles-per-txn delta (candidate minus baseline). Equals the
    /// sum of `rows[*].delta` by construction.
    pub fn cpt_delta(&self) -> f64 {
        self.cpt_b - self.cpt_a
    }

    /// Throughput change in percent; negative means the candidate is
    /// slower than the baseline.
    pub fn tps_change_pct(&self) -> f64 {
        if self.tps_a <= 0.0 {
            return 0.0;
        }
        (self.tps_b - self.tps_a) / self.tps_a * 100.0
    }

    /// Whether the candidate regressed past `threshold_pct` throughput
    /// loss — the CI gate.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.tps_change_pct() < -threshold_pct
    }
}

/// Decompose the throughput delta between two recorded runs into
/// phase x component cycles-per-txn contributions.
pub fn diff_runs(a: &RunRecord, b: &RunRecord) -> DiffReport {
    // Cell map over the union of (engine, phase) keys; sides decompose
    // under their own model, missing cells contribute zero.
    let mut keys: Vec<(String, String)> = Vec::new();
    for p in a.phases.iter().chain(b.phases.iter()) {
        let k = (p.engine.clone(), p.phase.clone());
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let side = |run: &RunRecord, key: &(String, String)| -> [f64; 9] {
        let mut out = [0.0; 9];
        for p in &run.phases {
            if p.engine == key.0 && p.phase == key.1 {
                let c = components(&run.model, &p.counts);
                for i in 0..9 {
                    out[i] += c[i] / run.txns.max(1) as f64;
                }
            }
        }
        out
    };
    let mut rows = Vec::new();
    for key in &keys {
        let ca = side(a, key);
        let cb = side(b, key);
        for (i, &component) in COMPONENTS.iter().enumerate() {
            if ca[i] == 0.0 && cb[i] == 0.0 {
                continue;
            }
            rows.push(DiffRow {
                engine: key.0.clone(),
                phase: key.1.clone(),
                component,
                a: ca[i],
                b: cb[i],
                delta: cb[i] - ca[i],
            });
        }
    }
    rows.sort_by(|x, y| y.delta.abs().total_cmp(&x.delta.abs()));
    DiffReport {
        a_label: format!("{}/{}", a.system, a.workload),
        b_label: format!("{}/{}", b.system, b.workload),
        cpt_a: a.cycles_per_txn(),
        cpt_b: b.cycles_per_txn(),
        tps_a: a.tps,
        tps_b: b.tps,
        rows,
    }
}

/// Render the ranked attribution table.
pub fn render(r: &DiffReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== differential top-down: {} (baseline) vs {} (candidate) ==",
        r.a_label, r.b_label
    );
    let _ = writeln!(
        out,
        "throughput: {:>12.0} -> {:>12.0} tps  ({:+.2}%)",
        r.tps_a,
        r.tps_b,
        r.tps_change_pct()
    );
    let _ = writeln!(
        out,
        "cycles/txn: {:>12.1} -> {:>12.1}      ({:+.1})",
        r.cpt_a,
        r.cpt_b,
        r.cpt_delta()
    );
    let _ = writeln!(
        out,
        "{:<28} {:>10} | {:>12} {:>12} {:>12}",
        "phase", "component", "baseline", "candidate", "delta c/txn"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<28} {:>10} | {:>12.1} {:>12.1} {:>+12.1}",
            format!("{}:{}", row.engine, row.phase),
            row.component,
            row.a,
            row.b,
            row.delta
        );
    }
    let sum: f64 = r.rows.iter().map(|row| row.delta).sum();
    let _ = writeln!(
        out,
        "{:<28} {:>10} | {:>12} {:>12} {:>+12.1}",
        "(total)", "", "", "", sum
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::DbSize;

    fn micro() -> WorkloadCfg {
        WorkloadCfg::Micro {
            size: DbSize::Mb1,
            rows_per_txn: 1,
            read_only: false,
            strings: false,
        }
    }

    #[test]
    fn components_sum_to_model_cycles() {
        let cfg = MachineConfig::ivy_bridge(1);
        let model = Model::from_config(&cfg);
        let c = EventCounts {
            instructions: 30_000,
            mispredicts: 40,
            store_misses: 11,
            misses: [5, 4, 3, 200, 20, 2],
            ..Default::default()
        };
        let total: f64 = components(&model, &c).iter().sum();
        assert!(
            (total - cfg.cycles(&c)).abs() < 1e-6,
            "decomposition must reproduce the cycle model: {total} vs {}",
            cfg.cycles(&c)
        );
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = record_run(SystemKind::VoltDb, &micro(), "micro");
        let text = rec.to_json().render();
        let back = RunRecord::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.system, rec.system);
        assert_eq!(back.txns, rec.txns);
        assert_eq!(back.phases.len(), rec.phases.len());
        assert_eq!(back.model, rec.model);
        assert!((back.cycles_per_txn() - rec.cycles_per_txn()).abs() < 1e-9);
        // The unattributed bucket is present so the partition is total.
        assert!(back.phases.iter().any(|p| p.phase == UNATTRIBUTED));
    }

    #[test]
    fn diff_deltas_sum_to_total_cycles_per_txn_delta() {
        // Two genuinely different runs of the same workload.
        let a = record_run(SystemKind::VoltDb, &micro(), "micro");
        let b = record_run(SystemKind::ShoreMt, &micro(), "micro");
        let report = diff_runs(&a, &b);
        let sum: f64 = report.rows.iter().map(|r| r.delta).sum();
        let total = report.cpt_delta();
        assert!(
            (sum - total).abs() <= 1e-6 * total.abs().max(1.0),
            "per-cell deltas ({sum}) must sum to the total cycles/txn delta ({total})"
        );
        assert!(!report.rows.is_empty());
        // Ranked: deltas are in non-increasing magnitude.
        assert!(report
            .rows
            .windows(2)
            .all(|w| w[0].delta.abs() >= w[1].delta.abs()));
        let text = render(&report);
        assert!(text.contains("differential top-down"));
    }

    #[test]
    fn identical_runs_diff_to_zero_and_do_not_regress() {
        let a = record_run(SystemKind::VoltDb, &micro(), "micro");
        let report = diff_runs(&a, &a);
        assert!(report.cpt_delta().abs() < 1e-9);
        assert!(report.rows.iter().all(|r| r.delta == 0.0));
        assert!(!report.regressed(1.0));
        // A 10x slower candidate trips the gate.
        let mut slow = a.clone();
        slow.tps /= 10.0;
        assert!(diff_runs(&a, &slow).regressed(30.0));
    }
}
