//! # uarch-sim — a software stand-in for the paper's Ivy Bridge server
//!
//! Sirin et al. (SIGMOD'16) measure OLTP systems with hardware counters on a
//! two-socket Intel Xeon E5-2640 v2. Their metrics are pure functions of a
//! handful of events — instructions retired, and instruction/data misses at
//! L1, L2 and the shared LLC — combined with fixed per-level miss penalties
//! (8 / 19 / 167 cycles, Table 1 of the paper).
//!
//! This crate simulates exactly that observable surface:
//!
//! * [`cache::Cache`] — set-associative, LRU, write-allocate caches;
//! * [`machine::Machine`] — per-core L1I/L1D/L2 plus a shared LLC with
//!   write-invalidation between cores, a 48-bit simulated address space, and
//!   an instruction-fetch engine that walks per-module *code segments*;
//! * [`counters::EventCounts`] — the VTune-like raw event set, attributable
//!   per core and per code module;
//! * [`config::MachineConfig`] — the Table 1 geometry, the miss penalties,
//!   and the out-of-order cycle model (ideal IPC 3.0 — the paper's measured
//!   no-miss loop — with per-event stall overlap factors).
//!
//! Database engines built on top of this crate do *real* work on real data
//! structures; the simulator only observes the memory traffic they generate,
//! the same way VTune observes a real server process.
//!
//! ```
//! use uarch_sim::{Sim, config::MachineConfig, code::ModuleSpec};
//!
//! let sim = Sim::new(MachineConfig::ivy_bridge(1));
//! let m = sim.register_module(ModuleSpec::new("txn_logic", 64 << 10).reuse(2.0));
//! let buf = sim.alloc(4096, 64);
//! let mut mem = sim.mem(0).with_module(m);
//! mem.exec(10_000);          // retire 10k instructions from `txn_logic`
//! mem.read(buf, 64);         // and touch one cache line of data
//! let c = sim.counters(0);
//! assert_eq!(c.instructions, 10_000);
//! assert!(c.misses.iter().sum::<u64>() > 0); // cold caches miss
//! ```

pub mod addr;
pub mod cache;
pub mod code;
pub mod coherence;
pub mod config;
pub mod counters;
pub mod iodev;
pub mod machine;
pub mod port;
pub mod rng;

use std::sync::Arc;

pub use code::{ModuleId, ModuleSpec};
pub use config::MachineConfig;
pub use counters::{EventCounts, StallEvent};
pub use iodev::{DeviceStats, LogDevice, NvmeProfile};
pub use machine::{BatchOp, CodeDesc, Machine, MAX_HOME_TAGS};
pub use port::CorePort;

/// Cache-line size used throughout the simulator (bytes). Ivy Bridge uses
/// 64-byte lines at every level.
pub const LINE: u64 = 64;

/// Shared handle to a simulated machine.
///
/// The machine is internally synchronized (per-core mutexes plus a shared
/// LLC lock — see [`machine`]), so `Sim` is `Send + Sync`: worker threads
/// clone the handle and drive their own cores concurrently, sharing the
/// LLC and coherence traffic exactly like threads of one server process.
#[derive(Clone)]
pub struct Sim(Arc<Machine>);

impl Sim {
    /// Build a fresh machine with cold caches.
    pub fn new(cfg: MachineConfig) -> Self {
        Sim(Arc::new(Machine::new(cfg)))
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.0
    }

    /// Register a code module (allocates its code segment).
    pub fn register_module(&self, spec: ModuleSpec) -> ModuleId {
        self.0.register_module(spec)
    }

    /// Allocate simulated data memory.
    pub fn alloc(&self, size: u64, align: u64) -> u64 {
        self.0.alloc_data(size, align)
    }

    /// A memory port bound to `core` (and, initially, to no code module).
    pub fn mem(&self, core: usize) -> Mem {
        Mem {
            sim: self.clone(),
            core,
            module: ModuleId::UNATTRIBUTED,
            desc: self.0.code_desc(ModuleId::UNATTRIBUTED),
        }
    }

    /// Check out the exclusive [`CorePort`] of `core`, enabling the
    /// lock-free access path for it. Returns `None` if the port is already
    /// out (e.g. a second session opened on the same core — accesses then
    /// ride the existing port's claim, or the spinlock fallback).
    pub fn try_checkout(&self, core: usize) -> Option<CorePort> {
        self.0
            .try_checkout(core)
            .then(|| CorePort::new(self.clone(), core))
    }

    /// [`Sim::try_checkout`] that panics when the port is already out.
    pub fn checkout(&self, core: usize) -> CorePort {
        self.try_checkout(core)
            .unwrap_or_else(|| panic!("core {core} port already checked out"))
    }

    /// Snapshot of the aggregate counters of `core`.
    pub fn counters(&self, core: usize) -> EventCounts {
        self.0.counters(core)
    }

    /// Snapshot of every core's aggregate counters, in core order — the
    /// export hook metric reporters use to mirror the machine state
    /// without touching it (reads never charge the simulation).
    pub fn counters_all(&self) -> Vec<EventCounts> {
        (0..self.cores()).map(|c| self.counters(c)).collect()
    }

    /// Snapshot of per-module counters of `core` (index = `ModuleId.0`).
    pub fn module_counters(&self, core: usize) -> Vec<EventCounts> {
        self.0.module_counters(core)
    }

    /// Human-readable module names in `ModuleId` order.
    pub fn module_names(&self) -> Vec<String> {
        self.0.module_names()
    }

    /// Spec of one module (for report attribution).
    pub fn module_spec(&self, id: ModuleId) -> ModuleSpec {
        self.0.module(id).spec
    }

    /// Full module specs in `ModuleId` order (for report attribution).
    pub fn module_specs(&self) -> Vec<ModuleSpec> {
        (0..self.0.module_names().len())
            .map(|i| self.0.module(ModuleId(i as u16)).spec)
            .collect()
    }

    /// Machine configuration (cloned; it is small).
    pub fn config(&self) -> MachineConfig {
        self.0.config().clone()
    }

    /// Number of simulated cores.
    pub fn cores(&self) -> usize {
        self.0.cores()
    }

    /// Toggle offline (bulk-load) mode: suppresses all simulated traffic.
    pub fn set_offline(&self, offline: bool) {
        self.0.set_offline(offline);
    }

    /// Take one core offline (or back online): that core's traffic is
    /// dropped and its counters freeze, as if the core were parked or
    /// failed; other cores are unaffected. Used by fault injection to
    /// model degraded placement.
    pub fn set_core_offline(&self, core: usize, offline: bool) {
        self.0.set_core_offline(core, offline);
    }

    /// Whether `core` is individually offline.
    pub fn core_offline(&self, core: usize) -> bool {
        self.0.core_offline(core)
    }

    /// Run `f` with simulation suppressed (bulk loading). The machine is
    /// brought back online even if `f` panics (drop guard), so a failing
    /// loader inside a `catch_unwind` harness cannot leave the simulator
    /// silently dead.
    pub fn offline<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Online<'a>(&'a Sim);
        impl Drop for Online<'_> {
            fn drop(&mut self) {
                self.0.set_offline(false);
            }
        }
        self.set_offline(true);
        let _guard = Online(self);
        f()
    }

    /// Prime the LLC with the allocated data region (post-load warm-up;
    /// see [`Machine::warm_data`]).
    pub fn warm_data(&self) {
        self.0.warm_data();
    }

    /// Number of sockets (1 unless built from [`MachineConfig::numa`]).
    pub fn sockets(&self) -> usize {
        self.0.sockets()
    }

    /// Socket of `core` (socket-major layout).
    pub fn socket_of(&self, core: usize) -> usize {
        self.0.socket_of(core)
    }

    /// Scope the ambient allocation home tag: until the guard drops,
    /// [`Sim::alloc`] places data in `tag`'s arena, whose home socket is
    /// set with [`Sim::set_tag_home`]. Placement code wraps a partition's
    /// table creation / bulk load in one guard. Tags are machine-global, so
    /// guards must not be nested across threads (engine loads are
    /// single-threaded).
    pub fn alloc_home_guard(&self, tag: usize) -> AllocHomeGuard {
        let prev = self.0.set_alloc_home(Some(tag));
        AllocHomeGuard {
            sim: self.clone(),
            prev,
        }
    }

    /// Home socket of untagged data, or `None` for the default 4 KB
    /// interleave (models the OS page policy).
    pub fn set_default_home(&self, socket: Option<usize>) {
        self.0.set_default_home(socket);
    }

    /// Re-home all data tagged `tag` to `socket` (O(1); the simulated
    /// `move_pages`).
    pub fn set_tag_home(&self, tag: usize, socket: usize) {
        self.0.set_tag_home(tag, socket);
    }

    /// Current home socket of `tag`.
    pub fn tag_home(&self, tag: usize) -> usize {
        self.0.tag_home(tag)
    }

    /// Migrate tags whose LLC-fill traffic is dominated by a non-home
    /// socket (see [`Machine::rehome_hot_tags`]); returns tags moved.
    pub fn rehome_hot_tags(&self, min_hits: u64, margin: f64) -> usize {
        self.0.rehome_hot_tags(min_hits, margin)
    }

    /// Check out any free core port on `socket`, scanning that socket's
    /// cores in order. `None` when every port on the socket is out.
    pub fn try_checkout_on_socket(&self, socket: usize) -> Option<CorePort> {
        let per = self.cores() / self.sockets();
        (socket * per..(socket + 1) * per).find_map(|c| self.try_checkout(c))
    }
}

/// RAII scope for the ambient allocation home tag; see
/// [`Sim::alloc_home_guard`]. Restores the previous tag on drop.
pub struct AllocHomeGuard {
    sim: Sim,
    prev: Option<usize>,
}

impl Drop for AllocHomeGuard {
    fn drop(&mut self) {
        self.sim.0.set_alloc_home(self.prev);
    }
}

/// A memory/execution port: the handle engines use for every simulated
/// instruction fetch and data access. Cheap to clone; carries the core it is
/// bound to, the code module the activity is attributed to, and a snapshot
/// of that module's immutable fetch descriptor — so `exec` never takes the
/// module registry's `RwLock`.
#[derive(Clone)]
pub struct Mem {
    sim: Sim,
    core: usize,
    module: ModuleId,
    desc: CodeDesc,
}

impl Mem {
    /// Rebind the port to a different code module (builder style).
    #[must_use]
    pub fn with_module(&self, module: ModuleId) -> Mem {
        Mem {
            sim: self.sim.clone(),
            core: self.core,
            module,
            desc: self.sim.0.code_desc(module),
        }
    }

    /// Rebind the port to a different core (builder style).
    #[must_use]
    pub fn with_core(&self, core: usize) -> Mem {
        Mem {
            sim: self.sim.clone(),
            core,
            module: self.module,
            desc: self.desc,
        }
    }

    /// The core this port is bound to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The module this port attributes activity to.
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// The owning simulator handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Retire `n` instructions from this port's code module, streaming the
    /// corresponding instruction-cache line fetches.
    #[inline]
    pub fn exec(&self, n: u64) {
        self.sim
            .0
            .fetch_code_desc(self.core, self.module, n, &self.desc);
    }

    /// Simulated data load of `len` bytes at `addr` (touches every spanned
    /// cache line).
    #[inline]
    pub fn read(&self, addr: u64, len: u32) {
        self.sim
            .0
            .data_access(self.core, self.module, addr, len, false);
    }

    /// Simulated data store of `len` bytes at `addr`.
    #[inline]
    pub fn write(&self, addr: u64, len: u32) {
        self.sim
            .0
            .data_access(self.core, self.module, addr, len, true);
    }

    /// Allocate simulated data memory (convenience passthrough).
    pub fn alloc(&self, size: u64, align: u64) -> u64 {
        self.sim.alloc(size, align)
    }

    /// Batched loads under a single core acquisition — one port-state check
    /// and one coherence-queue drain amortized over the whole slice. Event
    /// accounting is identical to issuing each [`Mem::read`] separately.
    /// The natural fit is per-row scan loops.
    pub fn read_batch(&self, reads: &[(u64, u32)]) {
        self.sim.0.data_reads(self.core, self.module, reads);
    }

    /// Run a pre-built op slice under a single core acquisition — the
    /// allocation-free form of [`Mem::batch`] for hot loops that can stage
    /// ops in a stack array. Semantically identical to issuing the ops
    /// one by one.
    #[inline]
    pub fn run_ops(&self, ops: &[BatchOp]) {
        self.sim
            .0
            .run_batch(self.core, self.module, &self.desc, ops);
    }

    /// Start a batched op sequence (exec/read/write mixed) that commits
    /// under a single core acquisition. Semantically identical to issuing
    /// the ops one by one.
    pub fn batch(&self) -> MemBatch<'_> {
        MemBatch {
            mem: self,
            ops: Vec::new(),
        }
    }
}

/// Builder for a batched op sequence on one [`Mem`] port; see
/// [`Mem::batch`]. Ops run in insertion order at [`MemBatch::commit`].
pub struct MemBatch<'a> {
    mem: &'a Mem,
    ops: Vec<BatchOp>,
}

impl MemBatch<'_> {
    /// Queue an instruction retirement (like [`Mem::exec`]).
    pub fn exec(&mut self, n: u64) -> &mut Self {
        self.ops.push(BatchOp::Exec(n));
        self
    }

    /// Queue a data load (like [`Mem::read`]).
    pub fn read(&mut self, addr: u64, len: u32) -> &mut Self {
        self.ops.push(BatchOp::Read { addr, len });
        self
    }

    /// Queue a data store (like [`Mem::write`]).
    pub fn write(&mut self, addr: u64, len: u32) -> &mut Self {
        self.ops.push(BatchOp::Write { addr, len });
        self
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether any ops are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Run the queued ops under one core acquisition.
    pub fn commit(self) {
        let m = self.mem;
        m.sim.0.run_batch(m.core, m.module, &m.desc, &self.ops);
    }
}
