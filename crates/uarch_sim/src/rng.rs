//! A tiny, deterministic xorshift64* generator for the simulator's internal
//! randomness (branch-target selection in the instruction-fetch walker).
//!
//! The workload crates use the `rand` crate; the simulator keeps its own
//! dependency-free generator so that identical engine activity always
//! produces identical miss counts, independent of `rand` versions.

/// xorshift64* — fast, small-state, good enough for address scrambling.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded constructor; zero seeds are remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for our n << 2^64.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(37) < 37);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = XorShift64::new(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = XorShift64::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }
}
