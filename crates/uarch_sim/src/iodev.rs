//! NVMe-like log device: a submit/complete queue pair with a configurable
//! write-latency profile.
//!
//! The paper configures every engine with asynchronous logging, so no
//! engine ever *waits* for the log device in the measured figures — but a
//! durability tier needs an fsync-equivalent cost to make the group-commit
//! batch size vs commit-latency trade-off a measurable curve (NVMeVirt
//! makes the same argument for storage research on real kernels). This
//! module models exactly the observable surface a log writer cares about:
//!
//! * a **submission queue** and a **completion queue** allocated in
//!   simulated memory — posting a command touches the SQ entry line and
//!   rings the doorbell line, reaping touches the CQ entry line, so the
//!   device protocol itself generates the cache traffic a real driver
//!   pays;
//! * a **deterministic service-time model**: a write of `n` bytes
//!   completes at `max(now, slot_free) + base_latency + per_4k *
//!   ceil(n/4096)` simulated cycles, with `queue_depth` commands in
//!   flight — purely a function of the submission sequence, so two runs
//!   that submit the same writes at the same simulated times observe
//!   byte-identical completion times.
//!
//! "Now" is whatever cycle clock the caller supplies (the WAL uses the
//! cycle model evaluated on the flushing core's cumulative counters — the
//! same deterministic clock the tracing layer timestamps spans with).

use crate::{Mem, LINE};

/// Latency/geometry profile of the simulated log device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NvmeProfile {
    /// Fixed per-command latency in simulated cycles (controller +
    /// flash program time). ~20µs at 2GHz for a datacenter NVMe write.
    pub base_latency: f64,
    /// Additional cycles per 4 KB page of payload (transfer + program).
    pub per_4k: f64,
    /// Commands the device services concurrently; submissions beyond the
    /// depth queue behind the earliest-free slot.
    pub queue_depth: usize,
    /// Instructions retired by the driver per submission (command build,
    /// doorbell write, completion poll).
    pub submit_instrs: u64,
}

impl NvmeProfile {
    /// A low-latency datacenter NVMe log device (the default for
    /// `bench recover`): 12k-cycle write latency (~6µs at 2GHz),
    /// 2k cycles per 4KB page, queue depth 8.
    pub fn datacenter() -> Self {
        NvmeProfile {
            base_latency: 12_000.0,
            per_4k: 2_000.0,
            queue_depth: 8,
            submit_instrs: 160,
        }
    }

    /// Service time for one `bytes`-byte write (excluding queueing).
    pub fn service(&self, bytes: u64) -> f64 {
        self.base_latency + self.per_4k * (bytes.div_ceil(4096) as f64)
    }
}

/// Lifetime counters of one [`LogDevice`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeviceStats {
    /// Commands submitted.
    pub submits: u64,
    /// Payload bytes written.
    pub bytes: u64,
    /// Total cycles commands spent queued behind a busy slot.
    pub queue_wait: f64,
    /// Total service cycles (latency the device itself charged).
    pub service: f64,
}

/// One NVMe-like queue pair bound to a log stream.
///
/// Not synchronized: each WAL owns its device the way each partition owns
/// its command log, so completion times are a pure function of that log's
/// submission order.
pub struct LogDevice {
    profile: NvmeProfile,
    /// Simulated base addresses of the SQ / CQ rings (64-byte entries).
    sq_addr: u64,
    cq_addr: u64,
    /// Doorbell register line.
    db_addr: u64,
    /// Ring cursor (wraps at `queue_depth`).
    head: usize,
    /// Completion time of the command occupying each slot.
    slot_done: Vec<f64>,
    stats: DeviceStats,
}

impl LogDevice {
    /// Allocate the queue pair in simulated memory.
    pub fn new(mem: &Mem, profile: NvmeProfile) -> Self {
        let depth = profile.queue_depth.max(1) as u64;
        LogDevice {
            profile,
            sq_addr: mem.alloc(depth * LINE, LINE),
            cq_addr: mem.alloc(depth * LINE, LINE),
            db_addr: mem.alloc(LINE, LINE),
            head: 0,
            slot_done: vec![0.0; profile.queue_depth.max(1)],
            stats: DeviceStats::default(),
        }
    }

    /// The device's latency profile.
    pub fn profile(&self) -> &NvmeProfile {
        &self.profile
    }

    /// Submit one `bytes`-byte write at simulated time `now` (cycles) and
    /// return its completion time. Charges the driver-side protocol work
    /// (SQ entry build, doorbell ring, CQ poll) to `mem`'s core.
    pub fn submit(&mut self, mem: &Mem, now: f64, bytes: u64) -> f64 {
        let slot = self.head;
        self.head = (self.head + 1) % self.slot_done.len();
        // Driver protocol: build the SQ entry, ring the doorbell, poll
        // the CQ entry for the previous occupant of this slot.
        mem.exec(self.profile.submit_instrs);
        mem.write(self.sq_addr + slot as u64 * LINE, LINE as u32);
        mem.write(self.db_addr, 8);
        mem.read(self.cq_addr + slot as u64 * LINE, LINE as u32);
        let free_at = self.slot_done[slot];
        let start = now.max(free_at);
        let service = self.profile.service(bytes);
        let done = start + service;
        self.slot_done[slot] = done;
        self.stats.submits += 1;
        self.stats.bytes += bytes;
        self.stats.queue_wait += start - now;
        self.stats.service += service;
        done
    }

    /// Completion time of the most recently submitted command (0 before
    /// any submission).
    pub fn last_done(&self) -> f64 {
        let prev = (self.head + self.slot_done.len() - 1) % self.slot_done.len();
        self.slot_done[prev]
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineConfig, Sim};

    fn mem() -> Mem {
        Sim::new(MachineConfig::ivy_bridge(1)).mem(0)
    }

    #[test]
    fn completion_is_deterministic_and_ordered() {
        let mem = mem();
        let p = NvmeProfile::datacenter();
        let mut a = LogDevice::new(&mem, p);
        let mut b = LogDevice::new(&mem, p);
        let ta: Vec<f64> = (0..32)
            .map(|i| a.submit(&mem, i as f64 * 100.0, 4096))
            .collect();
        let tb: Vec<f64> = (0..32)
            .map(|i| b.submit(&mem, i as f64 * 100.0, 4096))
            .collect();
        assert_eq!(ta, tb, "same submissions, same completions");
        assert!(ta.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn queue_depth_bounds_concurrency() {
        let mem = mem();
        let p = NvmeProfile {
            base_latency: 1000.0,
            per_4k: 0.0,
            queue_depth: 2,
            submit_instrs: 10,
        };
        let mut d = LogDevice::new(&mem, p);
        // Three simultaneous submissions: the first two run concurrently,
        // the third queues behind slot 0.
        let t0 = d.submit(&mem, 0.0, 64);
        let t1 = d.submit(&mem, 0.0, 64);
        let t2 = d.submit(&mem, 0.0, 64);
        assert_eq!(t0, 1000.0);
        assert_eq!(t1, 1000.0);
        assert_eq!(t2, 2000.0, "third write waits for a slot");
        assert!(d.stats().queue_wait > 0.0);
    }

    #[test]
    fn payload_size_charges_per_page() {
        let p = NvmeProfile::datacenter();
        assert_eq!(p.service(1), p.base_latency + p.per_4k);
        assert_eq!(p.service(4096), p.base_latency + p.per_4k);
        assert_eq!(p.service(4097), p.base_latency + 2.0 * p.per_4k);
    }

    #[test]
    fn device_protocol_touches_simulated_memory() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let mem = sim.mem(0);
        let mut d = LogDevice::new(&mem, NvmeProfile::datacenter());
        let before = sim.counters(0);
        d.submit(&mem, 0.0, 4096);
        let after = sim.counters(0);
        assert!(after.instructions > before.instructions);
        assert!(after.stores > before.stores, "doorbell + SQ entry stores");
        assert!(after.loads > before.loads, "CQ poll load");
    }
}
