//! Owned core ports: exclusive, checked-out handles to one simulated core.
//!
//! The machine hands out **at most one** [`CorePort`] per core. While a
//! port is outstanding the core's state is accessed without any lock: the
//! port-holding session's accesses go straight to the core's private
//! caches and counters, and cross-core effects (store invalidations,
//! inclusive-LLC back-invalidations) arrive through the core's coherence
//! queue instead of a lock walk (see [`crate::coherence`]).
//!
//! # Ownership and threads
//!
//! A `CorePort` is `Send` but not `Sync`: a session (and the port inside
//! it) may migrate between threads — the experiment harness builds worker
//! sessions on the coordinator thread and moves them onto worker threads —
//! but only **one thread at a time** may drive a ported core. The machine
//! tracks the *claiming thread* with a lightweight token: the first access
//! after checkout (or after a cross-thread move) re-claims the core for
//! the calling thread. Migration is safe because moving the session
//! establishes a happens-before edge; concurrently driving one ported core
//! from two threads is a contract violation (debug builds detect it and
//! panic).
//!
//! Accesses to a core whose port is *not* checked out fall back to a
//! transient per-core spinlock, so legacy call sites (machine-level tests,
//! cross-core setup traffic, a second session opened on an already-ported
//! core from the same thread) keep working unchanged.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Sim;

/// Owner token meaning "checked out, not yet claimed by any thread".
pub(crate) const UNCLAIMED: u64 = 0;

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TOKEN: Cell<u64> = const { Cell::new(0) };
}

/// Monotonic per-thread token used to stamp core ownership. Never zero.
#[inline]
pub(crate) fn thread_token() -> u64 {
    TOKEN.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// Exclusive handle to one simulated core (RAII: checking the port back in
/// happens on drop). Obtained from [`Sim::try_checkout`] / [`Sim::checkout`].
///
/// Holding the port is what enables the lock-free access path for its
/// core; the port itself is a capability, not a data handle — sessions
/// keep using [`crate::Mem`] for traffic.
pub struct CorePort {
    sim: Sim,
    core: usize,
    /// `!Sync`: one thread at a time may drive a ported core.
    _single_thread: PhantomData<Cell<()>>,
}

impl CorePort {
    pub(crate) fn new(sim: Sim, core: usize) -> Self {
        CorePort {
            sim,
            core,
            _single_thread: PhantomData,
        }
    }

    /// The core this port owns.
    pub fn core(&self) -> usize {
        self.core
    }
}

impl Drop for CorePort {
    fn drop(&mut self) {
        self.sim.machine().checkin(self.core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    #[test]
    fn double_checkout_is_an_error() {
        let sim = Sim::new(MachineConfig::ivy_bridge(2));
        let p0 = sim.try_checkout(0).expect("first checkout");
        assert!(sim.try_checkout(0).is_none(), "core 0 is already ported");
        let p1 = sim.try_checkout(1).expect("other cores unaffected");
        assert_eq!(p0.core(), 0);
        assert_eq!(p1.core(), 1);
        drop(p0);
        // Checked back in: available again.
        assert!(sim.try_checkout(0).is_some());
    }

    #[test]
    #[should_panic(expected = "already checked out")]
    fn checkout_panics_on_conflict() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let _p = sim.checkout(0);
        let _q = sim.checkout(0);
    }

    #[test]
    fn ported_and_legacy_paths_agree() {
        // The same access stream must produce identical counters whether
        // the core is ported or driven through the fallback spinlock path.
        let run = |ported: bool| {
            let sim = Sim::new(MachineConfig::ivy_bridge(1));
            let port = ported.then(|| sim.checkout(0));
            let buf = sim.alloc(1 << 16, 64);
            let mem = sim.mem(0);
            for i in 0..5_000u64 {
                mem.read(buf + (i % 512) * 64, 8);
                if i % 7 == 0 {
                    mem.write(buf + (i % 1024) * 64, 8);
                }
            }
            mem.exec(100_000);
            drop(port);
            sim.counters(0)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn panicking_holder_releases_the_owner_token() {
        // A worker that panics while holding a claimed port must leave the
        // core fully reusable: the unwind drops the port, which has to
        // clear both the slot state AND the claiming-thread token — a
        // stale token from the dead thread could otherwise be adopted by a
        // racing claimant after the slot was already freed.
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let buf = sim.alloc(4096, 64);
        let handle = std::thread::spawn({
            let sim = sim.clone();
            move || {
                let _port = sim.checkout(0);
                sim.mem(0).read(buf, 8); // claim the core for this thread
                panic!("worker dies holding the port");
            }
        });
        assert!(handle.join().is_err(), "worker must have panicked");
        assert_eq!(
            sim.machine().port_owner(0),
            UNCLAIMED,
            "dropping the port during unwind must release the owner token"
        );
        // The core is reusable end to end: fresh checkout, fresh claim.
        let port = sim.try_checkout(0).expect("port released by the unwind");
        sim.mem(0).read(buf + 64, 8);
        sim.mem(0).exec(500);
        drop(port);
        let c = sim.counters(0);
        assert_eq!(c.loads, 2);
        assert_eq!(c.instructions, 500);
    }

    #[test]
    fn port_migrates_across_threads() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let port = sim.checkout(0);
        let buf = sim.alloc(4096, 64);
        let mem = sim.mem(0);
        mem.read(buf, 8); // claim on this thread
        std::thread::scope(|s| {
            let mem = &mem;
            let port = port; // moved into the worker with the traffic
            s.spawn(move || {
                let _port = port;
                mem.read(buf + 64, 8); // re-claims for the worker thread
                mem.exec(1000);
            });
        });
        let c = sim.counters(0);
        assert_eq!(c.loads, 2);
        assert_eq!(c.instructions, 1000);
    }
}
