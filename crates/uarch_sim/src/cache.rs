//! A single set-associative cache with true-LRU replacement.
//!
//! Addresses are handled at line granularity: callers pass *line numbers*
//! (`addr >> 6` for 64-byte lines). Tags store the full line number, so a
//! cache never aliases two distinct lines.

use crate::config::CacheGeometry;

const EMPTY: u64 = u64::MAX;

/// One set-associative cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: u64,
    ways: usize,
    /// `tags[set * ways + way]` = resident line number or `EMPTY`.
    tags: Vec<u64>,
    /// LRU stamps, same indexing; larger = more recently used.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        let ways = geom.ways as usize;
        Cache {
            sets,
            ways,
            tags: vec![EMPTY; (sets as usize) * ways],
            stamps: vec![0; (sets as usize) * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line % self.sets) as usize
    }

    /// Access `line`: returns `true` on hit. On miss the line is filled,
    /// evicting the LRU way of its set; the evicted line (if any) is
    /// returned through `evicted`.
    pub fn access(&mut self, line: u64) -> AccessOutcome {
        debug_assert_ne!(line, EMPTY);
        self.clock += 1;
        let set = self.set_of(line);
        let base = set * self.ways;
        let mut lru_way = 0;
        let mut lru_stamp = u64::MAX;
        for w in 0..self.ways {
            let idx = base + w;
            if self.tags[idx] == line {
                self.stamps[idx] = self.clock;
                self.hits += 1;
                return AccessOutcome {
                    hit: true,
                    evicted: None,
                };
            }
            if self.stamps[idx] < lru_stamp {
                lru_stamp = self.stamps[idx];
                lru_way = w;
            }
        }
        self.misses += 1;
        let idx = base + lru_way;
        let evicted = if self.tags[idx] == EMPTY {
            None
        } else {
            Some(self.tags[idx])
        };
        self.tags[idx] = line;
        self.stamps[idx] = self.clock;
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Non-destructive presence check (does not update LRU or stats).
    pub fn contains(&self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Remove `line` if present; returns whether it was resident.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        for w in 0..self.ways {
            let idx = base + w;
            if self.tags[idx] == line {
                self.tags[idx] = EMPTY;
                self.stamps[idx] = 0;
                return true;
            }
        }
        false
    }

    /// Drop all contents (cold restart) while keeping hit/miss statistics.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Number of currently valid lines (O(capacity); diagnostics only).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.tags.len()
    }
}

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Line evicted by the fill, if the access missed a full set.
    pub evicted: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheGeometry::new(512, 64, 2))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(100).hit);
        assert!(c.access(100).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn distinct_lines_same_set_coexist_up_to_ways() {
        let mut c = tiny();
        // lines 0, 4, 8 all map to set 0 (4 sets); 2 ways.
        assert!(!c.access(0).hit);
        assert!(!c.access(4).hit);
        assert!(c.access(0).hit);
        assert!(c.access(4).hit);
        // Third distinct line evicts the LRU (line 0 after the re-touch of 4?
        // order: 0,4,0,4 -> LRU is 0).
        let out = c.access(8);
        assert!(!out.hit);
        assert_eq!(out.evicted, Some(0));
        assert!(c.contains(4));
        assert!(c.contains(8));
        assert!(!c.contains(0));
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = tiny();
        c.access(0);
        c.access(4);
        c.access(0); // 4 is now LRU
        let out = c.access(8);
        assert_eq!(out.evicted, Some(4));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(123);
        assert!(c.invalidate(123));
        assert!(!c.contains(123));
        assert!(!c.invalidate(123));
        assert!(!c.access(123).hit);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        for l in 0..8 {
            c.access(l);
        }
        assert!(c.resident_lines() > 0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        // 32 KB, 8-way, 64 B lines -> 512 lines.
        let mut c = Cache::new(CacheGeometry::new(32 << 10, 64, 8));
        let lines: Vec<u64> = (0..512).collect();
        for &l in &lines {
            c.access(l);
        }
        for _ in 0..3 {
            for &l in &lines {
                assert!(c.access(l).hit, "line {l} should be resident");
            }
        }
    }

    #[test]
    fn cyclic_overflow_thrashes_lru() {
        // Working set slightly over capacity with cyclic access defeats LRU.
        let mut c = Cache::new(CacheGeometry::new(32 << 10, 64, 8));
        let n = 512 + 64;
        for _ in 0..4 {
            for l in 0..n {
                c.access(l);
            }
        }
        // After warmup, cyclic sweep over >capacity misses at a high rate.
        let before = c.misses();
        for l in 0..n {
            c.access(l);
        }
        let new_misses = c.misses() - before;
        assert!(new_misses > n / 2, "LRU should thrash: {new_misses}/{n}");
    }
}
