//! A single set-associative cache with true-LRU replacement.
//!
//! Addresses are handled at line granularity: callers pass *line numbers*
//! (`addr >> 6` for 64-byte lines). Tags store the full line number, so a
//! cache never aliases two distinct lines.

use crate::config::CacheGeometry;

const EMPTY: u64 = u64::MAX;

/// One way of one set: the resident line's tag and its LRU stamp (larger =
/// more recently used). Tag and stamp sit side by side so the hit-path scan
/// walks one contiguous slice — this is the hottest loop in the simulator.
#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    stamp: u64,
}

/// One set-associative cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: u64,
    /// `sets - 1` when `sets` is a power of two (the usual geometry), so
    /// the set index is a mask instead of a division; `u64::MAX` otherwise.
    set_mask: u64,
    ways: usize,
    /// `slots[set * ways + way]`; `tag == EMPTY` marks an invalid way.
    slots: Vec<Way>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        Self::with_sets(geom.sets(), geom.ways as usize)
    }

    /// Build an empty cache with an explicit set count — used for LLC lock
    /// stripes, where each stripe holds `total_sets / stripes` sets and the
    /// caller routes lines to (stripe, set) itself via [`Cache::access_at`].
    pub fn with_sets(sets: u64, ways: usize) -> Self {
        assert!(sets >= 1 && ways >= 1);
        Cache {
            sets,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                u64::MAX
            },
            ways,
            slots: vec![
                Way {
                    tag: EMPTY,
                    stamp: 0
                };
                (sets as usize) * ways
            ],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        // `line & (sets - 1)` equals `line % sets` exactly when `sets` is a
        // power of two, so the fast path changes no observable mapping.
        if self.set_mask != u64::MAX {
            (line & self.set_mask) as usize
        } else {
            (line % self.sets) as usize
        }
    }

    /// Access `line`: returns `true` on hit. On miss the line is filled,
    /// evicting the LRU way of its set; the evicted line (if any) is
    /// returned through `evicted`.
    #[inline]
    pub fn access(&mut self, line: u64) -> AccessOutcome {
        self.access_at(self.set_of(line), line)
    }

    /// [`Cache::access`] with the set index chosen by the caller (LLC
    /// stripes map the global set index onto (stripe, local set)).
    #[inline]
    pub fn access_at(&mut self, set: usize, line: u64) -> AccessOutcome {
        debug_assert_ne!(line, EMPTY);
        debug_assert!((set as u64) < self.sets);
        self.clock += 1;
        let clock = self.clock;
        let base = set * self.ways;
        let set_ways = &mut self.slots[base..base + self.ways];
        // Single pass: search for the tag while tracking the LRU victim, so
        // a miss (the common case for the over-capacity footprints the
        // paper studies) never rescans the set.
        let mut lru_way = 0;
        let mut lru_stamp = u64::MAX;
        for (w, way) in set_ways.iter_mut().enumerate() {
            if way.tag == line {
                way.stamp = clock;
                self.hits += 1;
                return AccessOutcome {
                    hit: true,
                    evicted: None,
                };
            }
            if way.stamp < lru_stamp {
                lru_stamp = way.stamp;
                lru_way = w;
            }
        }
        self.misses += 1;
        let way = &mut set_ways[lru_way];
        let evicted = if way.tag == EMPTY {
            None
        } else {
            Some(way.tag)
        };
        way.tag = line;
        way.stamp = clock;
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Non-destructive presence check (does not update LRU or stats).
    pub fn contains(&self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .any(|w| w.tag == line)
    }

    /// Remove `line` if present; returns whether it was resident.
    #[inline]
    pub fn invalidate(&mut self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        for way in &mut self.slots[base..base + self.ways] {
            if way.tag == line {
                way.tag = EMPTY;
                way.stamp = 0;
                return true;
            }
        }
        false
    }

    /// Drop all contents (cold restart) while keeping hit/miss statistics.
    pub fn flush(&mut self) {
        self.slots.fill(Way {
            tag: EMPTY,
            stamp: 0,
        });
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Number of currently valid lines (O(capacity); diagnostics only).
    pub fn resident_lines(&self) -> usize {
        self.slots.iter().filter(|w| w.tag != EMPTY).count()
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.slots.len()
    }
}

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Line evicted by the fill, if the access missed a full set.
    pub evicted: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheGeometry::new(512, 64, 2))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(100).hit);
        assert!(c.access(100).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn distinct_lines_same_set_coexist_up_to_ways() {
        let mut c = tiny();
        // lines 0, 4, 8 all map to set 0 (4 sets); 2 ways.
        assert!(!c.access(0).hit);
        assert!(!c.access(4).hit);
        assert!(c.access(0).hit);
        assert!(c.access(4).hit);
        // Third distinct line evicts the LRU (line 0 after the re-touch of 4?
        // order: 0,4,0,4 -> LRU is 0).
        let out = c.access(8);
        assert!(!out.hit);
        assert_eq!(out.evicted, Some(0));
        assert!(c.contains(4));
        assert!(c.contains(8));
        assert!(!c.contains(0));
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = tiny();
        c.access(0);
        c.access(4);
        c.access(0); // 4 is now LRU
        let out = c.access(8);
        assert_eq!(out.evicted, Some(4));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(123);
        assert!(c.invalidate(123));
        assert!(!c.contains(123));
        assert!(!c.invalidate(123));
        assert!(!c.access(123).hit);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        for l in 0..8 {
            c.access(l);
        }
        assert!(c.resident_lines() > 0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        // 32 KB, 8-way, 64 B lines -> 512 lines.
        let mut c = Cache::new(CacheGeometry::new(32 << 10, 64, 8));
        let lines: Vec<u64> = (0..512).collect();
        for &l in &lines {
            c.access(l);
        }
        for _ in 0..3 {
            for &l in &lines {
                assert!(c.access(l).hit, "line {l} should be resident");
            }
        }
    }

    #[test]
    fn cyclic_overflow_thrashes_lru() {
        // Working set slightly over capacity with cyclic access defeats LRU.
        let mut c = Cache::new(CacheGeometry::new(32 << 10, 64, 8));
        let n = 512 + 64;
        for _ in 0..4 {
            for l in 0..n {
                c.access(l);
            }
        }
        // After warmup, cyclic sweep over >capacity misses at a high rate.
        let before = c.misses();
        for l in 0..n {
            c.access(l);
        }
        let new_misses = c.misses() - before;
        assert!(new_misses > n / 2, "LRU should thrash: {new_misses}/{n}");
    }
}
