//! Code segments and the instruction-fetch model.
//!
//! Every database component (parser, lock manager, B-tree code, a compiled
//! stored procedure, ...) is registered as a *module* with a static code
//! footprint, an average dynamic *reuse* (how many times each fetched
//! instruction is executed per invocation — loops raise it), and a
//! *branchiness* (probability that the fetch stream jumps to a far target
//! inside the segment instead of falling through).
//!
//! Executing `n` instructions of a module touches
//! `n / (instrs_per_line * reuse)` instruction-cache lines, walked
//! sequentially from the segment start with occasional far jumps. Repeat
//! executions of the same line within an invocation hit L1I trivially and
//! are therefore not replayed through the cache model (only counted), which
//! keeps simulation cost proportional to *unique* line touches.
//!
//! This reproduces the instruction-side phenomena the paper reports:
//! a hot path larger than L1I thrashes it cyclically (the dominant L1I
//! stalls); a hot path larger than its L2 share adds L2I misses (DBMS D);
//! and a compiled transaction whose segment fits in L1I produces almost no
//! instruction stalls at all (HyPer).

use serde::{Deserialize, Serialize};

/// Instructions per 64-byte cache line (x86 average ~4 bytes/instruction).
pub const INSTRS_PER_LINE: u64 = 16;

/// Identifier of a registered code module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleId(pub u16);

impl ModuleId {
    /// Catch-all module for activity issued before any module is bound.
    /// Always registered at id 0 with a minimal footprint.
    pub const UNATTRIBUTED: ModuleId = ModuleId(0);
}

/// Static description of a code module.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Human-readable name (stable across runs; used in reports).
    pub name: String,
    /// Static code footprint in bytes.
    pub footprint: u32,
    /// Average dynamic executions of each fetched instruction per
    /// invocation (>= 1.0). Tight loops have high reuse; straight-line
    /// branchy glue code has reuse near 1.
    pub reuse: f64,
    /// Probability per line-advance of a far jump within the segment.
    pub branchiness: f64,
    /// Whether this module counts as "inside the OLTP engine" (storage
    /// manager) for the paper's Figure 7 breakdown.
    pub engine_side: bool,
}

impl ModuleSpec {
    /// A module with default reuse (2.0), moderate branchiness (0.02), not
    /// engine-side.
    pub fn new(name: impl Into<String>, footprint: u32) -> Self {
        ModuleSpec {
            name: name.into(),
            footprint: footprint.max(64),
            reuse: 2.0,
            branchiness: 0.02,
            engine_side: false,
        }
    }

    /// Set the dynamic reuse factor.
    #[must_use]
    pub fn reuse(mut self, r: f64) -> Self {
        assert!(r >= 1.0, "reuse must be >= 1.0");
        self.reuse = r;
        self
    }

    /// Set the far-jump probability.
    #[must_use]
    pub fn branchiness(mut self, b: f64) -> Self {
        assert!((0.0..=1.0).contains(&b));
        self.branchiness = b;
        self
    }

    /// Mark the module as part of the OLTP engine (storage manager).
    #[must_use]
    pub fn engine_side(mut self, yes: bool) -> Self {
        self.engine_side = yes;
        self
    }

    /// Segment length in cache lines.
    pub fn lines(&self) -> u64 {
        (u64::from(self.footprint)).div_ceil(64).max(1)
    }
}

/// A registered module: spec plus its allocated code-segment base line.
#[derive(Clone, Debug)]
pub struct Module {
    /// Static description.
    pub spec: ModuleSpec,
    /// First line number of the code segment.
    pub base_line: u64,
}

/// Registry of all modules of a machine. Code segments are laid out
/// contiguously in a dedicated region of the simulated address space so
/// they contend in the caches exactly like real text sections do.
#[derive(Debug, Default)]
pub struct ModuleRegistry {
    modules: Vec<Module>,
    next_line: u64,
}

/// Base of the code region (line number). Data allocations live far above.
pub const CODE_REGION_BASE_LINE: u64 = 0x0080_0000; // byte addr 0x2000_0000

impl ModuleRegistry {
    /// Create a registry pre-populated with the `UNATTRIBUTED` module.
    pub fn new() -> Self {
        let mut r = ModuleRegistry {
            modules: Vec::new(),
            next_line: CODE_REGION_BASE_LINE,
        };
        let id = r.register(ModuleSpec::new("(unattributed)", 4096).reuse(4.0));
        debug_assert_eq!(id, ModuleId::UNATTRIBUTED);
        r
    }

    /// Register a module, allocating its code segment. Panics after 65k
    /// modules (far beyond any engine's needs).
    pub fn register(&mut self, spec: ModuleSpec) -> ModuleId {
        let id = u16::try_from(self.modules.len()).expect("too many modules");
        let base_line = self.next_line;
        // Pad segments to distinct 4 KB "pages" so unrelated modules do not
        // share lines.
        self.next_line += spec.lines().div_ceil(64) * 64;
        self.modules.push(Module { spec, base_line });
        ModuleId(id)
    }

    /// Look up a module.
    pub fn get(&self, id: ModuleId) -> &Module {
        &self.modules[id.0 as usize]
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when only the built-in module exists.
    pub fn is_empty(&self) -> bool {
        self.modules.len() <= 1
    }

    /// Names in id order.
    pub fn names(&self) -> Vec<String> {
        self.modules.iter().map(|m| m.spec.name.clone()).collect()
    }

    /// Iterate (id, module).
    pub fn iter(&self) -> impl Iterator<Item = (ModuleId, &Module)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, m)| (ModuleId(i as u16), m))
    }

    /// One line past the last code segment (start of free line space).
    pub fn end_line(&self) -> u64 {
        self.next_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_allocates_disjoint_segments() {
        let mut r = ModuleRegistry::new();
        let a = r.register(ModuleSpec::new("a", 10_000));
        let b = r.register(ModuleSpec::new("b", 64));
        let (ma, mb) = (r.get(a), r.get(b));
        assert!(ma.base_line + ma.spec.lines() <= mb.base_line);
    }

    #[test]
    fn unattributed_is_id_zero() {
        let r = ModuleRegistry::new();
        assert_eq!(r.get(ModuleId::UNATTRIBUTED).spec.name, "(unattributed)");
    }

    #[test]
    fn lines_rounds_up() {
        assert_eq!(ModuleSpec::new("x", 65).lines(), 2);
        assert_eq!(ModuleSpec::new("x", 64).lines(), 1);
        // Footprints are clamped to at least one line.
        assert_eq!(ModuleSpec::new("x", 1).lines(), 1);
    }

    #[test]
    #[should_panic(expected = "reuse")]
    fn reuse_below_one_rejected() {
        let _ = ModuleSpec::new("x", 64).reuse(0.5);
    }
}
