//! Queued coherence: per-core bounded MPSC invalidation queues.
//!
//! A store by one core must remove the written line from every other
//! core's private caches (MESI downgrade-to-invalid), and an inclusive-LLC
//! eviction must back-invalidate the victim everywhere. Walking the other
//! cores' locks on every store serializes the whole machine; instead the
//! writer *publishes* the invalidation onto each target core's queue and
//! the target applies it at its next access boundary (its next simulated
//! access, counter snapshot, or cache flush). Invalidations within one
//! drain batch commute — applying a set of line removals in any order
//! yields the same cache state — so the queue only has to be lossless,
//! not ordered across producers.
//!
//! The ring is a bounded Vyukov-style MPMC buffer used with a single
//! consumer (whoever currently holds access rights to the core — see
//! [`crate::machine`]). When a storm overruns the ring, entries overflow
//! into a mutex-protected vector: slower, but **never dropped** — the
//! `pushed == applied` invariant is what the threaded stress tests pin.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Flag bit distinguishing an inclusive-LLC back-invalidation (drop the
/// line from L1I/L1D/L2, no counter) from a store invalidation (drop from
/// L1D/L2, count if resident). Simulated line numbers are < 2^44, so the
/// top bit is free.
pub const BACK_INVALIDATE: u64 = 1 << 63;

/// Ring capacity (entries). Must be a power of two. Sized so that even a
/// multi-line store burst between two access boundaries stays in the ring;
/// overflow is correct but slow.
const RING: usize = 1024;

struct Cell {
    seq: AtomicUsize,
    val: UnsafeCell<u64>,
}

/// One core's inbound invalidation queue. Producers are any other cores'
/// store paths; the consumer is whoever holds the core's access rights.
pub struct InvalQueue {
    cells: Box<[Cell]>,
    mask: usize,
    tail: AtomicUsize,
    /// Consumer cursor. Not atomic: protected by the core's access rights
    /// (exactly one thread may consume at a time).
    head: UnsafeCell<usize>,
    overflow: Mutex<Vec<u64>>,
    overflow_pending: AtomicBool,
    pushed: AtomicU64,
    applied: AtomicU64,
}

// The `UnsafeCell`s are coordinated by the seq protocol (ring values) and
// by the machine's core-access rights (head cursor).
unsafe impl Send for InvalQueue {}
unsafe impl Sync for InvalQueue {}

impl Default for InvalQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl InvalQueue {
    pub fn new() -> Self {
        InvalQueue {
            cells: (0..RING)
                .map(|i| Cell {
                    seq: AtomicUsize::new(i),
                    val: UnsafeCell::new(0),
                })
                .collect(),
            mask: RING - 1,
            tail: AtomicUsize::new(0),
            head: UnsafeCell::new(0),
            overflow: Mutex::new(Vec::new()),
            overflow_pending: AtomicBool::new(false),
            pushed: AtomicU64::new(0),
            applied: AtomicU64::new(0),
        }
    }

    /// Publish one invalidation. Lock-free unless the ring is full, in
    /// which case the entry goes to the (lossless) overflow vector.
    pub fn push(&self, v: u64) {
        self.pushed.fetch_add(1, Ordering::Relaxed);
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { *cell.val.get() = v };
                        cell.seq.store(pos + 1, Ordering::Release);
                        return;
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                // Ring full: fall back to the overflow vector.
                self.overflow.lock().unwrap().push(v);
                self.overflow_pending.store(true, Ordering::Release);
                return;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Cheap emptiness probe for the consumer's fast path.
    ///
    /// # Safety
    /// Caller must hold the core's access rights (sole consumer).
    #[inline]
    pub unsafe fn has_pending(&self) -> bool {
        let head = unsafe { *self.head.get() };
        self.tail.load(Ordering::Relaxed) != head || self.overflow_pending.load(Ordering::Relaxed)
    }

    /// Apply every published invalidation through `f`. Entries a producer
    /// has reserved but not yet published are picked up by the next drain.
    ///
    /// # Safety
    /// Caller must hold the core's access rights (sole consumer).
    pub unsafe fn drain(&self, mut f: impl FnMut(u64)) {
        let head = unsafe { &mut *self.head.get() };
        let mut n = 0u64;
        loop {
            let cell = &self.cells[*head & self.mask];
            if cell.seq.load(Ordering::Acquire) != *head + 1 {
                break;
            }
            let v = unsafe { *cell.val.get() };
            cell.seq.store(*head + self.mask + 1, Ordering::Release);
            *head += 1;
            n += 1;
            f(v);
        }
        if self.overflow_pending.swap(false, Ordering::Acquire) {
            let spill: Vec<u64> = std::mem::take(&mut *self.overflow.lock().unwrap());
            n += spill.len() as u64;
            for v in spill {
                f(v);
            }
        }
        if n > 0 {
            self.applied.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Lifetime (pushed, applied) counts — equal once the queue is
    /// quiesced and drained; the no-lost-invalidation invariant.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.pushed.load(Ordering::Relaxed),
            self.applied.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_round_trip() {
        let q = InvalQueue::new();
        for v in 0..10u64 {
            q.push(v);
        }
        let mut got = Vec::new();
        unsafe { q.drain(|v| got.push(v)) };
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(q.totals(), (10, 10));
        assert!(unsafe { !q.has_pending() });
    }

    #[test]
    fn overflow_is_lossless() {
        let q = InvalQueue::new();
        let n = (RING * 3) as u64;
        for v in 0..n {
            q.push(v);
        }
        let mut got = Vec::new();
        unsafe { q.drain(|v| got.push(v)) };
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
        assert_eq!(q.totals(), (n, n));
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let q = std::sync::Arc::new(InvalQueue::new());
        const PRODUCERS: u64 = 4;
        const PER: u64 = 50_000;
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                });
            }
            // One consumer drains concurrently (it holds the only rights).
            let q2 = std::sync::Arc::clone(&q);
            s.spawn(move || {
                let mut seen = 0u64;
                while seen < PRODUCERS * PER {
                    let mut batch = 0;
                    unsafe { q2.drain(|_| batch += 1) };
                    seen += batch;
                    if batch == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        });
        let (pushed, applied) = q.totals();
        assert_eq!(pushed, PRODUCERS * PER);
        assert_eq!(applied, pushed, "queued invalidations were lost");
    }
}
