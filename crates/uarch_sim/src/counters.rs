//! Raw hardware-event counters — the simulator's analogue of the VTune
//! event set the paper samples.

use serde::{Deserialize, Serialize};

/// The six miss classes the paper breaks stall time into (Figure 2 legend
/// order): instruction misses per level, then data misses per level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum StallEvent {
    /// L1 instruction-cache miss (hits further out).
    L1i = 0,
    /// Instruction fetch missing L2.
    L2i = 1,
    /// Instruction fetch missing the LLC.
    LlcI = 2,
    /// L1 data-cache miss.
    L1d = 3,
    /// Data access missing L2.
    L2d = 4,
    /// Data access missing the LLC (long-latency DRAM access).
    LlcD = 5,
}

impl StallEvent {
    /// All classes in display order.
    pub const ALL: [StallEvent; 6] = [
        StallEvent::L1i,
        StallEvent::L2i,
        StallEvent::LlcI,
        StallEvent::L1d,
        StallEvent::L2d,
        StallEvent::LlcD,
    ];

    /// Label as printed in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            StallEvent::L1i => "L1I",
            StallEvent::L2i => "L2I",
            StallEvent::LlcI => "LLC I",
            StallEvent::L1d => "L1D",
            StallEvent::L2d => "L2D",
            StallEvent::LlcD => "LLC D",
        }
    }

    /// True for the three instruction-side classes.
    pub fn is_instruction(self) -> bool {
        matches!(self, StallEvent::L1i | StallEvent::L2i | StallEvent::LlcI)
    }
}

/// A snapshot (or delta) of raw event counts for one core or one
/// (core, code-module) pair.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Instructions retired.
    pub instructions: u64,
    /// Instruction-cache line fetches issued (line granularity).
    pub code_fetches: u64,
    /// Data loads (line granularity).
    pub loads: u64,
    /// Data stores (line granularity).
    pub stores: u64,
    /// Misses per [`StallEvent`] class (indexed by `StallEvent as usize`).
    pub misses: [u64; 6],
    /// Branch mispredictions (far jumps in the fetch stream). Charged in
    /// the cycle model but *not* in the six stall bars — the paper's bars
    /// are cache-miss-only.
    pub mispredicts: u64,
    /// Store misses (write-allocate fills). Not part of the six stall
    /// classes: stores retire into the store buffer without stalling, and
    /// the paper's counters are load-retirement events. Tracked for
    /// diagnostics and for a small cycle-model store-pressure term.
    pub store_misses: u64,
    /// Coherence invalidations received from other cores' writes.
    pub invalidations: u64,
    /// Cross-socket (QPI-like) accesses: demand fills whose home memory is
    /// on another socket plus coherence invalidations arriving from a
    /// remote socket. Always zero on a single-socket machine, so all
    /// single-socket baselines and digests are unaffected.
    #[serde(default)]
    pub remote_accesses: u64,
}

impl EventCounts {
    /// Component-wise accumulation.
    pub fn add(&mut self, other: &EventCounts) {
        self.instructions += other.instructions;
        self.code_fetches += other.code_fetches;
        self.loads += other.loads;
        self.stores += other.stores;
        for i in 0..6 {
            self.misses[i] += other.misses[i];
        }
        self.mispredicts += other.mispredicts;
        self.store_misses += other.store_misses;
        self.invalidations += other.invalidations;
        self.remote_accesses += other.remote_accesses;
    }

    /// `self - earlier`, for window deltas. Panics (in debug builds) if the
    /// counters ever ran backwards, which would indicate a harness bug.
    pub fn delta(&self, earlier: &EventCounts) -> EventCounts {
        debug_assert!(self.instructions >= earlier.instructions);
        let mut misses = [0u64; 6];
        for (i, m) in misses.iter_mut().enumerate() {
            *m = self.misses[i] - earlier.misses[i];
        }
        EventCounts {
            instructions: self.instructions - earlier.instructions,
            code_fetches: self.code_fetches - earlier.code_fetches,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            misses,
            mispredicts: self.mispredicts - earlier.mispredicts,
            store_misses: self.store_misses - earlier.store_misses,
            invalidations: self.invalidations - earlier.invalidations,
            remote_accesses: self.remote_accesses - earlier.remote_accesses,
        }
    }

    /// Total misses across all six classes.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Misses of one class.
    pub fn miss(&self, e: StallEvent) -> u64 {
        self.misses[e as usize]
    }

    /// Record a miss of one class.
    pub fn record_miss(&mut self, e: StallEvent) {
        self.misses[e as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_figure_legend_order() {
        let labels: Vec<_> = StallEvent::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels, ["L1I", "L2I", "LLC I", "L1D", "L2D", "LLC D"]);
    }

    #[test]
    fn add_then_delta_round_trips() {
        let mut a = EventCounts {
            instructions: 100,
            loads: 7,
            ..Default::default()
        };
        a.misses[1] = 3;
        let mut b = a.clone();
        let mut extra = EventCounts {
            instructions: 50,
            stores: 2,
            ..Default::default()
        };
        extra.misses[1] = 1;
        extra.misses[5] = 4;
        b.add(&extra);
        assert_eq!(b.delta(&a), extra);
    }

    #[test]
    fn instruction_classes() {
        assert!(StallEvent::L1i.is_instruction());
        assert!(StallEvent::LlcI.is_instruction());
        assert!(!StallEvent::L1d.is_instruction());
        assert!(!StallEvent::LlcD.is_instruction());
    }
}
