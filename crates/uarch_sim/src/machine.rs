//! The simulated machine: private per-core caches, a shared LLC with
//! write-invalidation, the instruction-fetch walker, and event accounting.
//!
//! The machine is internally synchronized so concurrent worker threads can
//! drive different cores through a shared handle: each core's private state
//! sits behind its own mutex, the shared LLC behind another. Lock discipline
//! (no deadlocks by construction):
//!
//! * a thread holds at most one *core* lock at a time;
//! * the LLC lock may be taken while holding a core lock (core → LLC), never
//!   the other way around;
//! * coherence walks ([`Machine::invalidate_others`], back-invalidation)
//!   lock other cores strictly one at a time while holding no other lock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, RwLock};

use crate::addr::AddressSpace;
use crate::cache::Cache;
use crate::code::{Module, ModuleId, ModuleRegistry, ModuleSpec, INSTRS_PER_LINE};
use crate::config::MachineConfig;
use crate::counters::{EventCounts, StallEvent};
use crate::rng::XorShift64;
use crate::LINE;

/// Per-core private state.
struct Core {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    counts: EventCounts,
    /// Counters per module id.
    module_counts: Vec<EventCounts>,
    /// Fetch-walker cursor per module id (line offset within the segment).
    cursors: Vec<u64>,
    rng: XorShift64,
}

impl Core {
    fn new(cfg: &MachineConfig, id: usize, modules: usize) -> Self {
        Core {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            counts: EventCounts::default(),
            module_counts: vec![EventCounts::default(); modules],
            cursors: vec![0; modules],
            rng: XorShift64::new(0xC0FE + id as u64 * 0x9E37),
        }
    }

    fn grow_modules(&mut self, n: usize) {
        if self.module_counts.len() < n {
            self.module_counts.resize_with(n, EventCounts::default);
            self.cursors.resize(n, 0);
        }
    }
}

/// Base byte address of the simulated data region (code lives far below).
pub const DATA_REGION_BASE: u64 = 0x0100_0000_0000;
/// Size of the simulated data region (enough for any experiment).
pub const DATA_REGION_SIZE: u64 = 0x0F00_0000_0000;

/// The full simulated machine. See the crate docs for the model.
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<Mutex<Core>>,
    llc: Mutex<Cache>,
    modules: RwLock<ModuleRegistry>,
    data: Mutex<AddressSpace>,
    offline: AtomicBool,
}

impl Machine {
    /// Build a machine with cold caches.
    pub fn new(cfg: MachineConfig) -> Self {
        let modules = ModuleRegistry::new();
        let cores = (0..cfg.cores)
            .map(|i| Mutex::new(Core::new(&cfg, i, modules.len())))
            .collect();
        Machine {
            llc: Mutex::new(Cache::new(cfg.llc)),
            cores,
            modules: RwLock::new(modules),
            data: Mutex::new(AddressSpace::new(DATA_REGION_BASE, DATA_REGION_SIZE)),
            offline: AtomicBool::new(false),
            cfg,
        }
    }

    /// Offline mode suppresses all simulated instruction fetches and data
    /// accesses (address allocation still works). Used for bulk loading:
    /// the paper populates databases before attaching the profiler, and a
    /// warm-up window re-establishes cache state afterwards.
    pub fn set_offline(&self, offline: bool) {
        self.offline.store(offline, Ordering::Relaxed);
    }

    /// Whether the machine is in offline (bulk-load) mode.
    pub fn offline(&self) -> bool {
        self.offline.load(Ordering::Relaxed)
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Register a code module; all cores see it.
    pub fn register_module(&self, spec: ModuleSpec) -> ModuleId {
        let mut reg = self.modules.write().unwrap();
        let id = reg.register(spec);
        let n = reg.len();
        for c in &self.cores {
            c.lock().unwrap().grow_modules(n);
        }
        id
    }

    /// Module names in id order.
    pub fn module_names(&self) -> Vec<String> {
        self.modules.read().unwrap().names()
    }

    /// Module lookup (cloned; specs are small and read-mostly).
    pub fn module(&self, id: ModuleId) -> Module {
        self.modules.read().unwrap().get(id).clone()
    }

    /// Ids of modules flagged `engine_side`.
    pub fn engine_side_modules(&self) -> Vec<ModuleId> {
        self.modules
            .read()
            .unwrap()
            .iter()
            .filter(|(_, m)| m.spec.engine_side)
            .map(|(id, _)| id)
            .collect()
    }

    /// Allocate simulated data memory.
    pub fn alloc_data(&self, size: u64, align: u64) -> u64 {
        self.data.lock().unwrap().alloc(size, align)
    }

    /// Aggregate counters of `core` (snapshot).
    pub fn counters(&self, core: usize) -> EventCounts {
        self.cores[core].lock().unwrap().counts.clone()
    }

    /// Per-module counters of `core` (snapshot).
    pub fn module_counters(&self, core: usize) -> Vec<EventCounts> {
        self.cores[core].lock().unwrap().module_counts.clone()
    }

    /// Retire `n` instructions of `module` on `core`, streaming the unique
    /// instruction-line fetches through the cache hierarchy.
    ///
    /// The walker keeps a persistent per-(core, module) cursor: successive
    /// invocations continue through the segment (different call paths,
    /// different branches) and cycle across its whole footprint over many
    /// transactions. A module whose footprint fits L1I therefore becomes
    /// I-cache resident, while a large one keeps missing — the per-system
    /// property §4 of the paper measures. Far jumps (`branchiness`) break
    /// pure cyclic order so over-capacity footprints degrade smoothly
    /// instead of hitting the LRU cliff.
    pub fn fetch_code(&self, core: usize, module: ModuleId, n: u64) {
        if n == 0 || self.offline() {
            return;
        }
        let (base_line, seg_lines, reuse, branchiness) = {
            let reg = self.modules.read().unwrap();
            let m = reg.get(module);
            (
                m.base_line,
                m.spec.lines(),
                m.spec.reuse,
                m.spec.branchiness,
            )
        };
        let unique = (((n as f64) / (INSTRS_PER_LINE as f64 * reuse)).ceil() as u64).max(1);

        let mut guard = self.cores[core].lock().unwrap();
        let c = &mut *guard;
        c.counts.instructions += n;
        c.counts.code_fetches += n.div_ceil(INSTRS_PER_LINE);
        // Branch mispredictions scale with how branchy the module is
        // (~0.12 mispredicted branches per branch-dense instruction).
        let expected_mp = n as f64 * branchiness * 0.12;
        let mp = expected_mp as u64 + u64::from(c.rng.chance(expected_mp - expected_mp.floor()));
        c.counts.mispredicts += mp;
        let mc = &mut c.module_counts[module.0 as usize];
        mc.instructions += n;
        mc.code_fetches += n.div_ceil(INSTRS_PER_LINE);
        mc.mispredicts += mp;

        let prefetch = self.cfg.i_prefetch_next_line;
        let mut cursor = c.cursors[module.0 as usize] % seg_lines;
        for _ in 0..unique {
            let line = base_line + cursor;
            // L1I -> L2 -> LLC
            if !c.l1i.access(line).hit {
                Self::bump(c, module, StallEvent::L1i);
                if !c.l2.access(line).hit {
                    Self::bump(c, module, StallEvent::L2i);
                    if !self.llc.lock().unwrap().access(line).hit {
                        Self::bump(c, module, StallEvent::LlcI);
                    }
                }
                if prefetch && cursor + 1 < seg_lines {
                    // Pull the next line alongside the demand miss; no
                    // stall is charged for the prefetch itself.
                    c.l1i.access(line + 1);
                    c.l2.access(line + 1);
                    self.llc.lock().unwrap().access(line + 1);
                }
            }
            if branchiness > 0.0 && c.rng.chance(branchiness) {
                cursor = c.rng.next_below(seg_lines);
            } else {
                cursor = (cursor + 1) % seg_lines;
            }
        }
        c.cursors[module.0 as usize] = cursor;
    }

    /// Perform a data access of `len` bytes at byte address `addr`
    /// (load when `store == false`), touching every spanned line.
    ///
    /// Only the first line of a multi-line access is charged as a demand
    /// miss: the spatial/adjacent-line prefetcher of a real core streams
    /// the rest of a sequential object read behind it (they still fill the
    /// caches and count as prefetch fills, not stalls).
    pub fn data_access(&self, core: usize, module: ModuleId, addr: u64, len: u32, store: bool) {
        if self.offline() {
            return;
        }
        let first = addr / LINE;
        let last = (addr + u64::from(len.max(1)) - 1) / LINE;
        self.data_line(core, module, first, store);
        for line in first + 1..=last {
            self.prefetch_line(core, module, line, store);
        }
    }

    /// Fill `line` through the hierarchy without charging stall-class
    /// misses (hardware-prefetched trailing lines of a sequential read).
    fn prefetch_line(&self, core: usize, module: ModuleId, line: u64, store: bool) {
        {
            let mut guard = self.cores[core].lock().unwrap();
            let c = &mut *guard;
            if store {
                c.counts.stores += 1;
                c.module_counts[module.0 as usize].stores += 1;
            } else {
                c.counts.loads += 1;
                c.module_counts[module.0 as usize].loads += 1;
            }
            if !c.l1d.access(line).hit {
                c.l2.access(line);
                self.llc.lock().unwrap().access(line);
            }
        }
        if store && self.cores.len() > 1 {
            self.invalidate_others(core, line);
        }
    }

    fn data_line(&self, core: usize, module: ModuleId, line: u64, store: bool) {
        let mut victim = None;
        {
            let mut guard = self.cores[core].lock().unwrap();
            let c = &mut *guard;
            if store {
                c.counts.stores += 1;
                c.module_counts[module.0 as usize].stores += 1;
            } else {
                c.counts.loads += 1;
                c.module_counts[module.0 as usize].loads += 1;
            }
            if store {
                // Stores retire into the store buffer: the write-allocate
                // fill updates the caches but produces no retirement stall,
                // and the paper's counters are load events. Tracked
                // separately.
                let mut missed = false;
                if !c.l1d.access(line).hit {
                    missed = true;
                    if !c.l2.access(line).hit && !self.llc.lock().unwrap().access(line).hit {}
                }
                if missed {
                    c.counts.store_misses += 1;
                    c.module_counts[module.0 as usize].store_misses += 1;
                }
            } else if !c.l1d.access(line).hit {
                Self::bump(c, module, StallEvent::L1d);
                if !c.l2.access(line).hit {
                    Self::bump(c, module, StallEvent::L2d);
                    let out = self.llc.lock().unwrap().access(line);
                    if !out.hit {
                        Self::bump(c, module, StallEvent::LlcD);
                        if self.cfg.inclusive_llc {
                            victim = out.evicted;
                        }
                    }
                }
            }
        }
        // Inclusive-LLC back-invalidation runs with no core lock held.
        if let Some(v) = victim {
            self.back_invalidate(v);
        }
        // Write-invalidation: a store by one core removes the line from
        // every other core's private caches (MESI downgrade-to-invalid).
        if store && self.cores.len() > 1 {
            self.invalidate_others(core, line);
        }
    }

    fn invalidate_others(&self, core: usize, line: u64) {
        for other in 0..self.cores.len() {
            if other == core {
                continue;
            }
            let mut oc = self.cores[other].lock().unwrap();
            let invalidated = oc.l1d.invalidate(line) | oc.l2.invalidate(line);
            if invalidated {
                oc.counts.invalidations += 1;
            }
        }
    }

    /// Inclusive-LLC back-invalidation: drop the victim line from every
    /// private cache.
    fn back_invalidate(&self, line: u64) {
        for c in &self.cores {
            let mut c = c.lock().unwrap();
            c.l1i.invalidate(line);
            c.l1d.invalidate(line);
            c.l2.invalidate(line);
        }
    }

    #[inline]
    fn bump(core: &mut Core, module: ModuleId, e: StallEvent) {
        core.counts.record_miss(e);
        core.module_counts[module.0 as usize].record_miss(e);
    }

    /// Prime the shared LLC with the allocated data region (sequentially,
    /// newest lines last). Used after an offline bulk load: the paper's
    /// 60-second warm-up leaves a small database fully cache-resident;
    /// this reproduces that starting state without charging any events.
    /// For working sets beyond LLC capacity only the most recently
    /// touched tail stays resident, as it would on real hardware.
    pub fn warm_data(&self) {
        let used = self.data.lock().unwrap().used();
        let base = DATA_REGION_BASE / crate::LINE;
        let end = (DATA_REGION_BASE + used).div_ceil(crate::LINE);
        let mut llc = self.llc.lock().unwrap();
        for line in base..end {
            llc.access(line);
        }
    }

    /// Flush all caches (cold restart) without resetting counters.
    pub fn flush_caches(&self) {
        for c in &self.cores {
            let mut c = c.lock().unwrap();
            c.l1i.flush();
            c.l1d.flush();
            c.l2.flush();
        }
        self.llc.lock().unwrap().flush();
    }

    /// Diagnostic: lifetime LLC miss ratio across all traffic.
    pub fn llc_miss_ratio(&self) -> f64 {
        let llc = self.llc.lock().unwrap();
        let acc = llc.accesses();
        if acc == 0 {
            0.0
        } else {
            llc.misses() as f64 / acc as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(cores: usize) -> Machine {
        Machine::new(MachineConfig::ivy_bridge(cores))
    }

    #[test]
    fn tiny_module_becomes_l1i_resident() {
        let m = machine(1);
        let id = m.register_module(ModuleSpec::new("tight_loop", 2048).reuse(8.0));
        m.fetch_code(0, id, 100_000); // warmup
        let before = m.counters(0);
        m.fetch_code(0, id, 1_000_000);
        let d = m.counters(0).delta(&before);
        assert_eq!(d.instructions, 1_000_000);
        // 2 KB of code fits L1I: essentially no instruction misses.
        assert!(
            d.miss(StallEvent::L1i) < 10,
            "l1i={}",
            d.miss(StallEvent::L1i)
        );
    }

    #[test]
    fn oversized_module_thrashes_l1i_but_fits_l2() {
        let m = machine(1);
        // 128 KB hot path: > 32 KB L1I, < 256 KB L2.
        let id = m.register_module(
            ModuleSpec::new("fat", 128 << 10)
                .reuse(1.0)
                .branchiness(0.0),
        );
        m.fetch_code(0, id, 200_000);
        let before = m.counters(0);
        m.fetch_code(0, id, 1_000_000);
        let d = m.counters(0).delta(&before);
        let l1i = d.miss(StallEvent::L1i);
        let l2i = d.miss(StallEvent::L2i);
        let llci = d.miss(StallEvent::LlcI);
        // Cyclic 128 KB sweep misses L1I on ~every unique line...
        assert!(l1i > 50_000, "l1i={l1i}");
        // ...but the whole path is L2- and LLC-resident.
        assert!(l2i < l1i / 20, "l2i={l2i} vs l1i={l1i}");
        assert!(llci < 100, "llci={llci}");
    }

    #[test]
    fn data_working_set_larger_than_llc_misses_dram() {
        let m = machine(1);
        let region = 64u64 << 20; // 64 MB > 16 MB LLC
        let base = m.alloc_data(region, 64);
        let mut rng = XorShift64::new(99);
        // warmup + measure random line touches
        for _ in 0..200_000 {
            let off = rng.next_below(region / 64) * 64;
            m.data_access(0, ModuleId::UNATTRIBUTED, base + off, 8, false);
        }
        let before = m.counters(0);
        for _ in 0..100_000 {
            let off = rng.next_below(region / 64) * 64;
            m.data_access(0, ModuleId::UNATTRIBUTED, base + off, 8, false);
        }
        let d = m.counters(0).delta(&before);
        // Most random touches of a 4x-LLC working set miss the LLC.
        assert!(
            d.miss(StallEvent::LlcD) > 50_000,
            "llcd={}",
            d.miss(StallEvent::LlcD)
        );
    }

    #[test]
    fn small_data_working_set_stays_cached() {
        let m = machine(1);
        let region = 1u64 << 20; // 1 MB fits LLC (and mostly L2)
        let base = m.alloc_data(region, 64);
        let mut rng = XorShift64::new(7);
        for _ in 0..300_000 {
            let off = rng.next_below(region / 64) * 64;
            m.data_access(0, ModuleId::UNATTRIBUTED, base + off, 8, false);
        }
        let before = m.counters(0);
        for _ in 0..50_000 {
            let off = rng.next_below(region / 64) * 64;
            m.data_access(0, ModuleId::UNATTRIBUTED, base + off, 8, false);
        }
        let d = m.counters(0).delta(&before);
        // A handful of compulsory misses may remain (lines never drawn during
        // warmup); anything more would mean the LLC is not retaining the set.
        assert!(
            d.miss(StallEvent::LlcD) < 20,
            "llcd={}",
            d.miss(StallEvent::LlcD)
        );
    }

    #[test]
    fn inclusive_llc_back_invalidates_private_caches() {
        let run = |inclusive: bool| {
            let mut cfg = MachineConfig::ivy_bridge(1);
            cfg.inclusive_llc = inclusive;
            let m = Machine::new(cfg);
            // A hot line, then enough LLC pressure to evict it from LLC.
            let hot = m.alloc_data(64, 64);
            m.data_access(0, ModuleId::UNATTRIBUTED, hot, 8, false);
            let sweep = m.alloc_data(64 << 20, 64);
            for off in (0..(48u64 << 20)).step_by(64) {
                m.data_access(0, ModuleId::UNATTRIBUTED, sweep + off, 8, false);
            }
            // Touch the hot line again: with an inclusive LLC it was
            // back-invalidated from L1D and must miss.
            let before = m.counters(0);
            m.data_access(0, ModuleId::UNATTRIBUTED, hot, 8, false);
            m.counters(0).delta(&before).miss(StallEvent::L1d)
        };
        assert_eq!(run(true), 1, "inclusive LLC must back-invalidate");
        // Non-inclusive: the line survives in L1D (the sweep bypasses its
        // set only rarely; L1D has 64 sets and the sweep cycles them, so
        // allow either outcome but require the inclusive case to differ
        // from a freshly-warm hit path).
    }

    #[test]
    fn next_line_prefetcher_cuts_sequential_i_misses() {
        let run = |prefetch: bool| {
            let mut cfg = MachineConfig::ivy_bridge(1);
            cfg.i_prefetch_next_line = prefetch;
            let m = Machine::new(cfg);
            // Sequential walk over a >L1I footprint: the prefetcher's
            // best case.
            let id = m.register_module(
                ModuleSpec::new("seq", 128 << 10)
                    .reuse(1.0)
                    .branchiness(0.0),
            );
            m.fetch_code(0, id, 400_000);
            let before = m.counters(0);
            m.fetch_code(0, id, 1_000_000);
            m.counters(0).delta(&before).miss(StallEvent::L1i)
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with * 3 < without * 2,
            "prefetcher should cut sequential L1I misses: {with} vs {without}"
        );
    }

    #[test]
    fn writes_invalidate_other_cores() {
        let m = machine(2);
        let addr = m.alloc_data(64, 64);
        // Core 1 caches the line.
        m.data_access(1, ModuleId::UNATTRIBUTED, addr, 8, false);
        let before = m.counters(1);
        // Core 0 writes it -> core 1 loses it.
        m.data_access(0, ModuleId::UNATTRIBUTED, addr, 8, true);
        assert_eq!(m.counters(1).invalidations, before.invalidations + 1);
        // Core 1 re-reads: L1D miss again.
        let before = m.counters(1);
        m.data_access(1, ModuleId::UNATTRIBUTED, addr, 8, false);
        let d = m.counters(1).delta(&before);
        assert_eq!(d.miss(StallEvent::L1d), 1);
    }

    #[test]
    fn module_counters_sum_to_core_counters() {
        let m = machine(1);
        let a = m.register_module(ModuleSpec::new("a", 64 << 10));
        let b = m.register_module(ModuleSpec::new("b", 8 << 10));
        m.fetch_code(0, a, 50_000);
        m.fetch_code(0, b, 20_000);
        let addr = m.alloc_data(4096, 64);
        m.data_access(0, a, addr, 64, false);
        m.data_access(0, b, addr + 2048, 64, true);
        let total = m.counters(0);
        let mut sum = EventCounts::default();
        for mc in &m.module_counters(0) {
            sum.add(mc);
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn multi_byte_access_touches_all_spanned_lines() {
        let m = machine(1);
        let addr = m.alloc_data(8192, 64);
        let before = m.counters(0);
        m.data_access(0, ModuleId::UNATTRIBUTED, addr, 200, false); // 4 lines
        let d = m.counters(0).delta(&before);
        assert_eq!(d.loads, 4);
        // Access straddling a line boundary:
        let before = m.counters(0);
        m.data_access(0, ModuleId::UNATTRIBUTED, addr + 60, 8, false);
        assert_eq!(m.counters(0).delta(&before).loads, 2);
    }

    #[test]
    fn code_and_data_share_l2() {
        let m = machine(1);
        // A 200 KB code path nearly fills L2...
        let code = m.register_module(
            ModuleSpec::new("hot", 200 << 10)
                .reuse(1.0)
                .branchiness(0.0),
        );
        for _ in 0..10 {
            m.fetch_code(0, code, 800_000);
        }
        let before = m.counters(0);
        m.fetch_code(0, code, 800_000);
        let quiet_l2i = m.counters(0).delta(&before).miss(StallEvent::L2i);
        // ...then a 200 KB data sweep evicts code from L2 and L2I misses rise.
        let data = m.alloc_data(256 << 10, 64);
        for rep in 0..3 {
            let _ = rep;
            for off in (0..(200u64 << 10)).step_by(64) {
                m.data_access(0, ModuleId::UNATTRIBUTED, data + off, 8, false);
            }
            m.fetch_code(0, code, 800_000);
        }
        let before = m.counters(0);
        for off in (0..(200u64 << 10)).step_by(64) {
            m.data_access(0, ModuleId::UNATTRIBUTED, data + off, 8, false);
        }
        m.fetch_code(0, code, 800_000);
        let noisy_l2i = m.counters(0).delta(&before).miss(StallEvent::L2i);
        assert!(
            noisy_l2i > quiet_l2i + 100,
            "data pressure should evict code from L2: {noisy_l2i} vs {quiet_l2i}"
        );
    }

    #[test]
    fn concurrent_cores_sum_like_serial_cores() {
        // Thread-safety smoke: two threads hammering disjoint cores through
        // a shared machine must retire exactly what they issued.
        let m = std::sync::Arc::new(machine(2));
        let id = m.register_module(ModuleSpec::new("par", 32 << 10));
        let data = m.alloc_data(1 << 20, 64);
        std::thread::scope(|s| {
            for core in 0..2usize {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        m.fetch_code(core, id, 50);
                        m.data_access(core, id, data + (i % 1000) * 64, 8, core == 1);
                    }
                });
            }
        });
        for core in 0..2 {
            let c = m.counters(core);
            assert_eq!(c.instructions, 1_000_000, "core {core}");
            assert_eq!(c.loads + c.stores, 20_000, "core {core}");
        }
    }
}
