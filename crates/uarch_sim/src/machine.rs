//! The simulated machine: private per-core caches, a shared LLC with
//! write-invalidation, the instruction-fetch walker, and event accounting.
//!
//! # Synchronization: the lock-free fast path
//!
//! The common case — an access on the calling core that hits L1 — touches
//! no lock. Each core lives in a [`CoreSlot`] with a tiny state machine:
//!
//! * **Ported** — the core's [`crate::CorePort`] is checked out (sessions
//!   hold one). Accesses from the claiming thread go straight to the core
//!   state through an `UnsafeCell`; the only per-access synchronization is
//!   one state load, one owner-token load, and an emptiness probe of the
//!   core's coherence queue. Exactly one thread at a time may drive a
//!   ported core (see [`crate::port`] for the migration contract).
//! * **Free** — no port outstanding. Accesses serialize on a transient
//!   per-core spinlock (`Free -> Locked -> Free`), which keeps every
//!   legacy call pattern working: machine-level tests, cross-core setup
//!   traffic, and a second session opened on an already-ported core.
//!
//! Cross-core effects never touch another core's state directly. A store
//! *publishes* invalidations onto the other active cores' bounded MPSC
//! queues ([`crate::coherence`]), and each core applies its pending
//! invalidations at its next access boundary (access, counter snapshot, or
//! flush). Cores that have never issued an access have empty caches, so
//! stores skip their queues entirely — which is also what keeps 1-worker
//! counter streams bit-identical to the pre-queue implementation.
//!
//! The shared LLC is sharded into lock stripes keyed by set index, so
//! concurrent cores' misses only serialize when they land on the same
//! stripe. Striping is invisible to the cache model: set contents and LRU
//! order are per-set properties, and each set maps to exactly one stripe.

use std::cell::UnsafeCell;
use std::sync::atomic::{
    AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};
use std::sync::{Mutex, OnceLock, RwLock};

use crate::addr::AddressSpace;
use crate::cache::{AccessOutcome, Cache};
use crate::code::{Module, ModuleId, ModuleRegistry, ModuleSpec, INSTRS_PER_LINE};
use crate::coherence::{InvalQueue, BACK_INVALIDATE};
use crate::config::MachineConfig;
use crate::counters::{EventCounts, StallEvent};
use crate::port::{thread_token, UNCLAIMED};
use crate::rng::XorShift64;
use crate::LINE;

/// Per-core private state.
struct Core {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    /// The socket this core sits on (socket-major layout, fixed at build).
    socket: usize,
    counts: EventCounts,
    /// Counters per module id (grown lazily; see [`Machine::module_counters`]).
    module_counts: Vec<EventCounts>,
    /// Fetch-walker cursor per module id (line offset within the segment).
    cursors: Vec<u64>,
    rng: XorShift64,
}

impl Core {
    fn new(cfg: &MachineConfig, id: usize, modules: usize) -> Self {
        Core {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            socket: id / cfg.cores_per_socket(),
            counts: EventCounts::default(),
            module_counts: vec![EventCounts::default(); modules],
            cursors: vec![0; modules],
            rng: XorShift64::new(0xC0FE + id as u64 * 0x9E37),
        }
    }

    fn grow_modules(&mut self, n: usize) {
        if self.module_counts.len() < n {
            self.module_counts.resize_with(n, EventCounts::default);
            self.cursors.resize(n, 0);
        }
    }
}

/// Core slot states (see the module docs).
const FREE: u8 = 0;
const LOCKED: u8 = 1;
const PORTED: u8 = 2;

/// One core's slot: the state machine, the owner token, the inbound
/// coherence queue, and the core state itself.
struct CoreSlot {
    id: usize,
    state: AtomicU8,
    /// Thread token of the claiming thread while ported; [`UNCLAIMED`]
    /// between checkout and the first access.
    owner: AtomicU64,
    /// Set on the core's first simulated access. Stores skip publishing
    /// invalidations to inactive cores — their caches are empty, so the
    /// invalidation would be a no-op anyway.
    active: AtomicBool,
    queue: InvalQueue,
    cell: UnsafeCell<Core>,
    /// Debug-build detector for the one forbidden pattern: two threads
    /// driving the same ported core concurrently.
    #[cfg(debug_assertions)]
    busy: AtomicBool,
}

impl CoreSlot {
    fn new(cfg: &MachineConfig, id: usize, modules: usize) -> Self {
        CoreSlot {
            id,
            state: AtomicU8::new(FREE),
            owner: AtomicU64::new(UNCLAIMED),
            active: AtomicBool::new(false),
            queue: InvalQueue::new(),
            cell: UnsafeCell::new(Core::new(cfg, id, modules)),
            #[cfg(debug_assertions)]
            busy: AtomicBool::new(false),
        }
    }
}

/// RAII access to one core's state, acquired via [`Machine::core_enter`].
struct CoreRef<'a> {
    slot: &'a CoreSlot,
    /// Whether we hold the transient spinlock (free path) and must release
    /// it; ported-path access releases nothing.
    locked: bool,
}

impl<'a> CoreRef<'a> {
    fn new(slot: &'a CoreSlot, locked: bool) -> Self {
        #[cfg(debug_assertions)]
        assert!(
            !slot.busy.swap(true, Ordering::Acquire),
            "core {}: concurrent access to a ported core from two threads \
             (a ported core may be driven by one thread at a time)",
            slot.id
        );
        CoreRef { slot, locked }
    }

    /// The slot and the core state, borrowed together.
    #[inline]
    fn parts(&mut self) -> (&CoreSlot, &mut Core) {
        // Sound: `self` holds the slot's access rights (ported-and-claimed
        // or spin-locked), and the returned borrow is tied to `&mut self`.
        (self.slot, unsafe { &mut *self.slot.cell.get() })
    }
}

impl Drop for CoreRef<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        self.slot.busy.store(false, Ordering::Release);
        if self.locked {
            self.slot.state.store(FREE, Ordering::Release);
        }
    }
}

/// Immutable fetch parameters of one code module, cached outside the
/// registry lock. [`crate::Mem`] snapshots this at bind time so `exec`
/// never touches the registry's `RwLock`.
#[derive(Clone, Copy, Debug)]
pub struct CodeDesc {
    pub base_line: u64,
    pub seg_lines: u64,
    pub reuse: f64,
    pub branchiness: f64,
}

impl CodeDesc {
    fn of(m: &Module) -> Self {
        CodeDesc {
            base_line: m.base_line,
            seg_lines: m.spec.lines(),
            reuse: m.spec.reuse,
            branchiness: m.spec.branchiness,
        }
    }
}

/// Modules a machine can hold descriptors for. Engines register a few
/// dozen; the registry itself supports 65k.
const MAX_MODULES: usize = 4096;

/// Append-only, lock-free descriptor table: slots are published exactly
/// once (under the registry write lock) and then immutable.
struct DescTable {
    slots: Box<[OnceLock<CodeDesc>]>,
    len: AtomicUsize,
}

impl DescTable {
    fn new() -> Self {
        DescTable {
            slots: (0..MAX_MODULES).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
        }
    }

    fn publish(&self, id: ModuleId, d: CodeDesc) {
        let i = id.0 as usize;
        assert!(i < MAX_MODULES, "too many modules (raise MAX_MODULES)");
        self.slots[i]
            .set(d)
            .expect("module descriptor published twice");
        // Serialized by the registry write lock, so a plain store is a
        // monotone append.
        self.len.store(i + 1, Ordering::Release);
    }

    #[inline]
    fn get(&self, id: ModuleId) -> Option<CodeDesc> {
        let i = id.0 as usize;
        if i < self.len.load(Ordering::Acquire) {
            self.slots[i].get().copied()
        } else {
            None
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

/// Base byte address of the simulated data region (code lives far below).
pub const DATA_REGION_BASE: u64 = 0x0100_0000_0000;
/// Size of the simulated data region (enough for any experiment).
pub const DATA_REGION_SIZE: u64 = 0x0F00_0000_0000;

/// Home tags a multi-socket machine can track. On a NUMA machine the data
/// region is carved into one bump arena per tag (plus a default arena), so
/// an allocation's home socket is an O(1) address-range lookup on the miss
/// path — no per-allocation table. Engines typically tag one partition per
/// tag (`partition % MAX_HOME_TAGS`).
pub const MAX_HOME_TAGS: usize = 64;

/// Origin-socket bits packed into queued invalidation entries (below the
/// [`BACK_INVALIDATE`] flag; simulated line numbers stay < 2^44). Zero for
/// socket 0, so single-socket queue entries are bit-identical to the
/// pre-NUMA encoding.
const ORIGIN_SHIFT: u32 = 56;
const ORIGIN_MASK: u64 = 0x7F << ORIGIN_SHIFT;

/// Maximum LLC lock stripes (power of two; reduced until it divides the
/// LLC set count).
const MAX_LLC_STRIPES: usize = 64;

/// One LLC lock stripe: a spinlock over a slice of the LLC's sets. A
/// spinlock (not a `Mutex`) because the critical section is a handful of
/// tag compares — nanoseconds — and striping keeps contention rare, so
/// the uncontended cost is what matters.
struct LlcStripe {
    locked: AtomicBool,
    cell: UnsafeCell<Cache>,
}

impl LlcStripe {
    fn new(cache: Cache) -> Self {
        LlcStripe {
            locked: AtomicBool::new(false),
            cell: UnsafeCell::new(cache),
        }
    }

    #[inline]
    fn lock(&self) -> LlcGuard<'_> {
        let mut spins = 0u32;
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        LlcGuard { stripe: self }
    }
}

struct LlcGuard<'a> {
    stripe: &'a LlcStripe,
}

impl LlcGuard<'_> {
    /// The stripe's cache; exclusive while the guard lives.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    fn cache(&mut self) -> &mut Cache {
        // Sound: the spinlock is held and the borrow is tied to `&mut self`.
        unsafe { &mut *self.stripe.cell.get() }
    }
}

impl Drop for LlcGuard<'_> {
    fn drop(&mut self) {
        self.stripe.locked.store(false, Ordering::Release);
    }
}

/// One operation of a batched access sequence (see [`crate::MemBatch`]).
#[derive(Clone, Copy, Debug)]
pub enum BatchOp {
    /// Retire `n` instructions of the batch's module.
    Exec(u64),
    /// Data load of `len` bytes at `addr`.
    Read { addr: u64, len: u32 },
    /// Data store of `len` bytes at `addr`.
    Write { addr: u64, len: u32 },
}

/// The full simulated machine. See the module docs for the model and the
/// synchronization scheme.
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<CoreSlot>,
    /// LLC lock stripes, one full stripe set per socket: stripes of socket
    /// `k` occupy `llc[k * stripes_per_socket ..]`. Within a socket, the
    /// stripe of global set `s` is `s % stripes`; the local set index
    /// within the stripe is `s / stripes`.
    llc: Vec<LlcStripe>,
    llc_sets: u64,
    /// `llc_sets - 1` when the set count is a power of two (the Table 1
    /// geometry), `u64::MAX` otherwise — same mask trick as `Cache`.
    llc_set_mask: u64,
    llc_stripe_mask: usize,
    llc_stripe_shift: u32,
    llc_stripes_per_socket: usize,
    /// `cfg.cores / cfg.sockets` (socket-major core layout).
    cores_per_socket: usize,
    /// `sockets > 1` — gates every NUMA-only branch off the fast path.
    numa: bool,
    modules: RwLock<ModuleRegistry>,
    descs: DescTable,
    /// Data arenas: one bump allocator on a single-socket machine, one per
    /// home tag (plus the untagged arena 0) on a NUMA machine.
    data: Mutex<Vec<AddressSpace>>,
    /// Bytes covered by each arena (`DATA_REGION_SIZE / arena count`).
    arena_size: u64,
    /// Ambient home tag applied to allocations (-1 = untagged / arena 0).
    alloc_home: AtomicI64,
    /// Home socket for untagged data (-1 = 4 KB-chunk interleave).
    default_home: AtomicI64,
    /// Home socket per tag (index = tag).
    tag_home: Box<[AtomicU32]>,
    /// LLC-fill accesses per (tag, socket) — `tag * sockets + socket` —
    /// feeding [`Machine::rehome_hot_tags`].
    tag_hits: Box<[AtomicU64]>,
    offline: AtomicBool,
    /// Per-core offline flags (simulated core failure / parked core):
    /// suppresses that core's traffic only, unlike the machine-wide
    /// bulk-load `offline` switch.
    core_offline: Vec<AtomicBool>,
}

// SAFETY: the `UnsafeCell<Core>`s are guarded by the slot state machine —
// ported-and-claimed access is exclusive per the port contract, and free
// slots serialize on the transient spinlock. Everything else is atomics,
// mutexes, or immutable-after-publish data.
unsafe impl Sync for Machine {}

impl Machine {
    /// Build a machine with cold caches.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.sockets >= 1, "at least one socket");
        assert!(
            cfg.cores.is_multiple_of(cfg.sockets),
            "cores ({}) must divide evenly across sockets ({})",
            cfg.cores,
            cfg.sockets
        );
        let modules = ModuleRegistry::new();
        let descs = DescTable::new();
        for (id, m) in modules.iter() {
            descs.publish(id, CodeDesc::of(m));
        }
        let cores: Vec<CoreSlot> = (0..cfg.cores)
            .map(|i| CoreSlot::new(&cfg, i, modules.len()))
            .collect();
        let llc_sets = cfg.llc.sets();
        let mut stripes = MAX_LLC_STRIPES;
        while stripes > 1 && !llc_sets.is_multiple_of(stripes as u64) {
            stripes /= 2;
        }
        // One LLC per socket, each sharded into the same stripe layout.
        let llc = (0..cfg.sockets * stripes)
            .map(|_| {
                LlcStripe::new(Cache::with_sets(
                    llc_sets / stripes as u64,
                    cfg.llc.ways as usize,
                ))
            })
            .collect();
        // Single-socket machines keep the whole region in one arena, so
        // allocation addresses (and everything downstream — warm-up walks,
        // counter streams, digests) are bit-identical to the pre-NUMA
        // simulator. NUMA machines carve one arena per home tag.
        let arenas = if cfg.sockets > 1 {
            MAX_HOME_TAGS + 1
        } else {
            1
        };
        // Rounded down to a 4 KB boundary so every arena starts page- (and
        // line-) aligned; the single-arena size is unchanged
        // (`DATA_REGION_SIZE` is page-aligned).
        let arena_size = (DATA_REGION_SIZE / arenas as u64) & !4095;
        let data = (0..arenas as u64)
            .map(|i| AddressSpace::new(DATA_REGION_BASE + i * arena_size, arena_size))
            .collect();
        Machine {
            llc,
            llc_sets,
            llc_set_mask: if llc_sets.is_power_of_two() {
                llc_sets - 1
            } else {
                u64::MAX
            },
            llc_stripe_mask: stripes - 1,
            llc_stripe_shift: stripes.trailing_zeros(),
            llc_stripes_per_socket: stripes,
            cores_per_socket: cfg.cores_per_socket(),
            numa: cfg.sockets > 1,
            cores,
            modules: RwLock::new(modules),
            descs,
            data: Mutex::new(data),
            arena_size,
            alloc_home: AtomicI64::new(-1),
            default_home: AtomicI64::new(-1),
            tag_home: (0..MAX_HOME_TAGS).map(|_| AtomicU32::new(0)).collect(),
            tag_hits: (0..MAX_HOME_TAGS * cfg.sockets)
                .map(|_| AtomicU64::new(0))
                .collect(),
            offline: AtomicBool::new(false),
            core_offline: (0..cfg.cores).map(|_| AtomicBool::new(false)).collect(),
            cfg,
        }
    }

    /// Offline mode suppresses all simulated instruction fetches and data
    /// accesses (address allocation still works). Used for bulk loading:
    /// the paper populates databases before attaching the profiler, and a
    /// warm-up window re-establishes cache state afterwards.
    pub fn set_offline(&self, offline: bool) {
        self.offline.store(offline, Ordering::Relaxed);
    }

    /// Whether the machine is in offline (bulk-load) mode.
    pub fn offline(&self) -> bool {
        self.offline.load(Ordering::Relaxed)
    }

    /// Take one core offline (or back online). An offline core drops all
    /// simulated traffic — no fetches, no data accesses, frozen counters —
    /// as if the core were parked or failed; the other cores are
    /// unaffected. Used by fault injection to model degraded placement.
    pub fn set_core_offline(&self, core: usize, offline: bool) {
        self.core_offline[core].store(offline, Ordering::Relaxed);
    }

    /// Whether `core` is individually offline.
    pub fn core_offline(&self, core: usize) -> bool {
        self.core_offline[core].load(Ordering::Relaxed)
    }

    /// Whether traffic on `core` is currently suppressed (machine-wide
    /// bulk-load mode or an individual core-offline fault).
    #[inline]
    fn suppressed(&self, core: usize) -> bool {
        self.offline() || self.core_offline[core].load(Ordering::Relaxed)
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Register a code module; all cores see it. Does not touch any core's
    /// state (per-core counter vectors grow lazily on first use), so
    /// registration is safe while ports are checked out.
    pub fn register_module(&self, spec: ModuleSpec) -> ModuleId {
        let mut reg = self.modules.write().unwrap();
        let id = reg.register(spec);
        self.descs.publish(id, CodeDesc::of(reg.get(id)));
        id
    }

    /// Module names in id order.
    pub fn module_names(&self) -> Vec<String> {
        self.modules.read().unwrap().names()
    }

    /// Module lookup (cloned; specs are small and read-mostly).
    pub fn module(&self, id: ModuleId) -> Module {
        self.modules.read().unwrap().get(id).clone()
    }

    /// Cached immutable fetch parameters of `id` (lock-free).
    pub fn code_desc(&self, id: ModuleId) -> CodeDesc {
        self.descs.get(id).expect("module not registered")
    }

    /// Ids of modules flagged `engine_side`.
    pub fn engine_side_modules(&self) -> Vec<ModuleId> {
        self.modules
            .read()
            .unwrap()
            .iter()
            .filter(|(_, m)| m.spec.engine_side)
            .map(|(id, _)| id)
            .collect()
    }

    /// Allocate simulated data memory. On a NUMA machine the allocation
    /// lands in the arena of the ambient home tag (see
    /// [`Machine::set_alloc_home`]), or the untagged arena when none is set.
    pub fn alloc_data(&self, size: u64, align: u64) -> u64 {
        let arena = if self.numa {
            match self.alloc_home.load(Ordering::Relaxed) {
                t if t >= 0 => 1 + t as usize,
                _ => 0,
            }
        } else {
            0
        };
        self.data.lock().unwrap()[arena].alloc(size, align)
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        self.cfg.sockets
    }

    /// Socket of `core` (socket-major: cores `[k*C, (k+1)*C)` sit on
    /// socket `k`).
    #[inline]
    pub fn socket_of(&self, core: usize) -> usize {
        if self.numa {
            core / self.cores_per_socket
        } else {
            0
        }
    }

    /// Set (or clear) the ambient home tag applied to subsequent
    /// [`Machine::alloc_data`] calls, returning the previous value so
    /// callers can scope it. No-op signal on a single-socket machine
    /// (allocations always go to the one arena). Tags are machine-global:
    /// placement code sets one around a partition's bulk load, which is
    /// single-threaded in every engine.
    pub fn set_alloc_home(&self, tag: Option<usize>) -> Option<usize> {
        if let Some(t) = tag {
            assert!(t < MAX_HOME_TAGS, "home tag {t} out of range");
        }
        let prev = self
            .alloc_home
            .swap(tag.map_or(-1, |t| t as i64), Ordering::Relaxed);
        (prev >= 0).then_some(prev as usize)
    }

    /// Set the home socket of untagged data, or `None` to restore the
    /// default 4 KB-chunk interleave. Models the OS page policy
    /// (first-touch-on-one-socket vs interleaved).
    pub fn set_default_home(&self, socket: Option<usize>) {
        if let Some(s) = socket {
            assert!(s < self.cfg.sockets, "socket {s} out of range");
        }
        self.default_home
            .store(socket.map_or(-1, |s| s as i64), Ordering::Relaxed);
    }

    /// Re-home all data allocated under `tag` to `socket`. O(1): homes are
    /// looked up per miss, so migration is an atomic store (the simulated
    /// analogue of `move_pages` on a partition's arena).
    pub fn set_tag_home(&self, tag: usize, socket: usize) {
        assert!(tag < MAX_HOME_TAGS, "home tag {tag} out of range");
        assert!(socket < self.cfg.sockets, "socket {socket} out of range");
        self.tag_home[tag].store(socket as u32, Ordering::Relaxed);
    }

    /// Current home socket of `tag`.
    pub fn tag_home(&self, tag: usize) -> usize {
        self.tag_home[tag].load(Ordering::Relaxed) as usize
    }

    /// Migrate every tag whose observed LLC-fill traffic since the last
    /// call is dominated by a socket other than its current home: at least
    /// `min_hits` fills total and a `margin` fraction (e.g. `0.6`) of them
    /// from the winning socket. Returns the number of tags moved and
    /// resets the observation window of every tag that reached `min_hits`.
    pub fn rehome_hot_tags(&self, min_hits: u64, margin: f64) -> usize {
        if !self.numa {
            return 0;
        }
        let sockets = self.cfg.sockets;
        let mut moved = 0;
        for tag in 0..MAX_HOME_TAGS {
            let row = &self.tag_hits[tag * sockets..(tag + 1) * sockets];
            let mut total = 0u64;
            let (mut best, mut best_hits) = (0usize, 0u64);
            for (s, h) in row.iter().enumerate() {
                let v = h.load(Ordering::Relaxed);
                total += v;
                if v > best_hits {
                    best_hits = v;
                    best = s;
                }
            }
            if total < min_hits {
                continue;
            }
            let cur = self.tag_home[tag].load(Ordering::Relaxed) as usize;
            if best != cur && best_hits as f64 >= margin * total as f64 {
                self.tag_home[tag].store(best as u32, Ordering::Relaxed);
                moved += 1;
            }
            for h in row {
                h.store(0, Ordering::Relaxed);
            }
        }
        moved
    }

    /// Home socket of a data line, bumping the (tag, socket) observation
    /// counter for tagged data. Only called on the LLC-miss path of a NUMA
    /// machine.
    #[inline]
    fn classify_home(&self, line: u64, socket: usize) -> usize {
        let addr = line * LINE;
        if addr >= DATA_REGION_BASE {
            let arena = ((addr - DATA_REGION_BASE) / self.arena_size) as usize;
            if (1..=MAX_HOME_TAGS).contains(&arena) {
                let tag = arena - 1;
                self.tag_hits[tag * self.cfg.sockets + socket].fetch_add(1, Ordering::Relaxed);
                return self.tag_home[tag].load(Ordering::Relaxed) as usize;
            }
        }
        let d = self.default_home.load(Ordering::Relaxed);
        if d >= 0 {
            d as usize
        } else {
            // Interleave by 4 KB chunk (64 lines), like an OS interleaved
            // page policy.
            ((line >> 6) as usize) % self.cfg.sockets
        }
    }

    /// Charge a cross-socket access if the demand LLC fill of `line` on
    /// `socket` is homed remotely.
    #[inline]
    fn note_llc_fill(&self, c: &mut Core, mi: usize, socket: usize, line: u64) {
        if self.classify_home(line, socket) != socket {
            c.counts.remote_accesses += 1;
            c.module_counts[mi].remote_accesses += 1;
        }
    }

    /// Check out core `core`'s port: flips the slot to ported with no
    /// claiming thread yet. Returns false when the port is already out.
    pub(crate) fn try_checkout(&self, core: usize) -> bool {
        let slot = &self.cores[core];
        loop {
            match slot.state.load(Ordering::Acquire) {
                FREE => {
                    if slot
                        .state
                        .compare_exchange(FREE, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        slot.owner.store(UNCLAIMED, Ordering::Relaxed);
                        slot.state.store(PORTED, Ordering::Release);
                        return true;
                    }
                }
                // A transient free-path access holds the slot; wait for it.
                LOCKED => std::hint::spin_loop(),
                _ => return false,
            }
        }
    }

    /// Check a port back in (called from [`crate::CorePort::drop`]).
    ///
    /// The claiming-thread token is released *before* the slot goes FREE:
    /// a port dropped during a worker's panic unwind would otherwise leave
    /// the dead thread's token in the slot, and a later claimant racing
    /// the state transition could adopt it while the slot is no longer
    /// ported — an unstealable core. Clearing first means any observer of
    /// the stale PORTED state sees an UNCLAIMED owner, which is always
    /// safe to claim.
    pub(crate) fn checkin(&self, core: usize) {
        let slot = &self.cores[core];
        slot.owner.store(UNCLAIMED, Ordering::Relaxed);
        let prev = slot.state.swap(FREE, Ordering::Release);
        debug_assert_eq!(prev, PORTED, "checkin without an outstanding port");
    }

    /// Current owner token of `core`'s slot (tests only).
    #[cfg(test)]
    pub(crate) fn port_owner(&self, core: usize) -> u64 {
        self.cores[core].owner.load(Ordering::Relaxed)
    }

    /// Acquire access rights to `core` (see the module docs). `activate`
    /// marks the core as a target for future store invalidations and is
    /// set by real accesses, not by counter snapshots.
    #[inline]
    fn core_enter(&self, core: usize, activate: bool) -> CoreRef<'_> {
        let slot = &self.cores[core];
        if activate && !slot.active.load(Ordering::Relaxed) {
            slot.active.store(true, Ordering::Release);
        }
        let me = thread_token();
        let mut spins = 0u32;
        loop {
            match slot.state.load(Ordering::Acquire) {
                PORTED => {
                    let owner = slot.owner.load(Ordering::Relaxed);
                    if owner == me {
                        return CoreRef::new(slot, false);
                    }
                    // First access after checkout, or the owning session
                    // migrated to this thread: claim (or re-claim) the core.
                    if slot
                        .owner
                        .compare_exchange(owner, me, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        return CoreRef::new(slot, false);
                    }
                }
                FREE => {
                    if slot
                        .state
                        .compare_exchange(FREE, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        return CoreRef::new(slot, true);
                    }
                }
                _ => {
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Apply any pending queued invalidations to the core (access
    /// boundary; see [`crate::coherence`]).
    #[inline]
    fn drain_pending(&self, slot: &CoreSlot, c: &mut Core) {
        // SAFETY: we hold the core's access rights, so we are the sole
        // consumer of its queue.
        if unsafe { !slot.queue.has_pending() } {
            return;
        }
        unsafe {
            slot.queue.drain(|v| {
                let line = v & !(BACK_INVALIDATE | ORIGIN_MASK);
                if v & BACK_INVALIDATE != 0 {
                    // Inclusive-LLC back-invalidation: drop everywhere,
                    // charge nothing.
                    c.l1i.invalidate(line);
                    c.l1d.invalidate(line);
                    c.l2.invalidate(line);
                } else if c.l1d.invalidate(line) | c.l2.invalidate(line) {
                    // MESI write-invalidation: count only if resident.
                    c.counts.invalidations += 1;
                    // A resident line invalidated by a writer on another
                    // socket crossed the interconnect (snoop + later
                    // cache-to-cache refill); charge the receiver one
                    // remote access. Zero on single-socket machines.
                    if self.numa {
                        let origin = ((v & ORIGIN_MASK) >> ORIGIN_SHIFT) as usize;
                        if origin != c.socket {
                            c.counts.remote_accesses += 1;
                        }
                    }
                }
            });
        }
    }

    /// Grow the core's per-module vectors if `module` is newer than they
    /// are (modules registered after the machine's cores were built).
    #[inline]
    fn ensure_modules(&self, c: &mut Core, module: ModuleId) {
        if module.0 as usize >= c.module_counts.len() {
            c.grow_modules(self.descs.len());
        }
    }

    /// Access `socket`'s striped LLC: one spinlock per stripe, stripe keyed
    /// by the global set index so each set lives in exactly one stripe.
    #[inline]
    fn llc_access(&self, socket: usize, line: u64) -> AccessOutcome {
        let set = if self.llc_set_mask != u64::MAX {
            (line & self.llc_set_mask) as usize
        } else {
            (line % self.llc_sets) as usize
        };
        let stripe = set & self.llc_stripe_mask;
        let local = set >> self.llc_stripe_shift;
        self.llc[socket * self.llc_stripes_per_socket + stripe]
            .lock()
            .cache()
            .access_at(local, line)
    }

    /// Aggregate counters of `core` (snapshot; applies pending queued
    /// invalidations first so they are visible in the snapshot).
    pub fn counters(&self, core: usize) -> EventCounts {
        let mut g = self.core_enter(core, false);
        let (slot, c) = g.parts();
        self.drain_pending(slot, c);
        c.counts.clone()
    }

    /// Per-module counters of `core` (snapshot), padded to the full module
    /// registry length.
    pub fn module_counters(&self, core: usize) -> Vec<EventCounts> {
        let n = self.descs.len();
        let mut g = self.core_enter(core, false);
        let (slot, c) = g.parts();
        self.drain_pending(slot, c);
        let mut v = c.module_counts.clone();
        if v.len() < n {
            v.resize_with(n, EventCounts::default);
        }
        v
    }

    /// Lifetime (published, applied) coherence-queue totals across all
    /// cores. After quiescing (no stores in flight) and snapshotting every
    /// core's counters, the two are equal — the queues are lossless.
    pub fn coherence_totals(&self) -> (u64, u64) {
        self.cores
            .iter()
            .map(|s| s.queue.totals())
            .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    }

    /// Retire `n` instructions of `module` on `core`, streaming the unique
    /// instruction-line fetches through the cache hierarchy.
    ///
    /// The walker keeps a persistent per-(core, module) cursor: successive
    /// invocations continue through the segment (different call paths,
    /// different branches) and cycle across its whole footprint over many
    /// transactions. A module whose footprint fits L1I therefore becomes
    /// I-cache resident, while a large one keeps missing — the per-system
    /// property §4 of the paper measures. Far jumps (`branchiness`) break
    /// pure cyclic order so over-capacity footprints degrade smoothly
    /// instead of hitting the LRU cliff.
    pub fn fetch_code(&self, core: usize, module: ModuleId, n: u64) {
        let d = self.code_desc(module);
        self.fetch_code_desc(core, module, n, &d);
    }

    /// [`Machine::fetch_code`] with the module descriptor supplied by the
    /// caller ([`crate::Mem`] caches it at bind time).
    #[inline]
    pub(crate) fn fetch_code_desc(&self, core: usize, module: ModuleId, n: u64, d: &CodeDesc) {
        if n == 0 || self.suppressed(core) {
            return;
        }
        let mut g = self.core_enter(core, true);
        let (slot, c) = g.parts();
        self.drain_pending(slot, c);
        self.ensure_modules(c, module);
        self.fetch_code_in(c, module, d, n);
    }

    /// The fetch walker proper; requires core access rights.
    fn fetch_code_in(&self, c: &mut Core, module: ModuleId, d: &CodeDesc, n: u64) {
        let unique = (((n as f64) / (INSTRS_PER_LINE as f64 * d.reuse)).ceil() as u64).max(1);
        c.counts.instructions += n;
        c.counts.code_fetches += n.div_ceil(INSTRS_PER_LINE);
        // Branch mispredictions scale with how branchy the module is
        // (~0.12 mispredicted branches per branch-dense instruction).
        let expected_mp = n as f64 * d.branchiness * 0.12;
        let mp = expected_mp as u64 + u64::from(c.rng.chance(expected_mp - expected_mp.floor()));
        c.counts.mispredicts += mp;
        let mi = module.0 as usize;
        let mc = &mut c.module_counts[mi];
        mc.instructions += n;
        mc.code_fetches += n.div_ceil(INSTRS_PER_LINE);
        mc.mispredicts += mp;

        let prefetch = self.cfg.i_prefetch_next_line;
        let mut cursor = c.cursors[mi] % d.seg_lines;
        for _ in 0..unique {
            let line = d.base_line + cursor;
            // L1I -> L2 -> LLC
            if !c.l1i.access(line).hit {
                Self::bump(c, module, StallEvent::L1i);
                if !c.l2.access(line).hit {
                    Self::bump(c, module, StallEvent::L2i);
                    if !self.llc_access(c.socket, line).hit {
                        Self::bump(c, module, StallEvent::LlcI);
                    }
                }
                if prefetch && cursor + 1 < d.seg_lines {
                    // Pull the next line alongside the demand miss; no
                    // stall is charged for the prefetch itself.
                    c.l1i.access(line + 1);
                    c.l2.access(line + 1);
                    self.llc_access(c.socket, line + 1);
                }
            }
            if d.branchiness > 0.0 && c.rng.chance(d.branchiness) {
                cursor = c.rng.next_below(d.seg_lines);
            } else {
                // `cursor < seg_lines` always holds here, so the wrap is a
                // compare instead of a modulo (identical result).
                cursor += 1;
                if cursor == d.seg_lines {
                    cursor = 0;
                }
            }
        }
        c.cursors[mi] = cursor;
    }

    /// Perform a data access of `len` bytes at byte address `addr`
    /// (load when `store == false`), touching every spanned line.
    ///
    /// Only the first line of a multi-line access is charged as a demand
    /// miss: the spatial/adjacent-line prefetcher of a real core streams
    /// the rest of a sequential object read behind it (they still fill the
    /// caches and count as prefetch fills, not stalls).
    #[inline]
    pub fn data_access(&self, core: usize, module: ModuleId, addr: u64, len: u32, store: bool) {
        if self.suppressed(core) {
            return;
        }
        let mut g = self.core_enter(core, true);
        let (slot, c) = g.parts();
        self.drain_pending(slot, c);
        self.ensure_modules(c, module);
        self.span_access(c, core, module, addr, len, store);
    }

    /// Run a batched op sequence under a single core acquisition: one
    /// state check and one queue drain amortized over the whole batch,
    /// with per-op semantics identical to issuing the ops separately.
    pub(crate) fn run_batch(&self, core: usize, module: ModuleId, d: &CodeDesc, ops: &[BatchOp]) {
        if ops.is_empty() || self.suppressed(core) {
            return;
        }
        let mut g = self.core_enter(core, true);
        let (slot, c) = g.parts();
        self.drain_pending(slot, c);
        self.ensure_modules(c, module);
        for op in ops {
            match *op {
                BatchOp::Exec(n) => {
                    if n > 0 {
                        self.fetch_code_in(c, module, d, n);
                    }
                }
                BatchOp::Read { addr, len } => self.span_access(c, core, module, addr, len, false),
                BatchOp::Write { addr, len } => self.span_access(c, core, module, addr, len, true),
            }
        }
    }

    /// Batched loads under a single core acquisition (multi-line scans).
    pub(crate) fn data_reads(&self, core: usize, module: ModuleId, reads: &[(u64, u32)]) {
        if reads.is_empty() || self.suppressed(core) {
            return;
        }
        let mut g = self.core_enter(core, true);
        let (slot, c) = g.parts();
        self.drain_pending(slot, c);
        self.ensure_modules(c, module);
        for &(addr, len) in reads {
            self.span_access(c, core, module, addr, len, false);
        }
    }

    /// One data access (all spanned lines); requires core access rights.
    #[inline]
    fn span_access(
        &self,
        c: &mut Core,
        core: usize,
        module: ModuleId,
        addr: u64,
        len: u32,
        store: bool,
    ) {
        let first = addr / LINE;
        let last = (addr + u64::from(len.max(1)) - 1) / LINE;
        self.line_demand(c, core, module, first, store);
        for line in first + 1..=last {
            self.line_prefetch(c, core, module, line, store);
        }
    }

    /// Demand access to one line (the first line of an access).
    #[inline]
    fn line_demand(&self, c: &mut Core, core: usize, module: ModuleId, line: u64, store: bool) {
        let mi = module.0 as usize;
        if store {
            c.counts.stores += 1;
            c.module_counts[mi].stores += 1;
            // Stores retire into the store buffer: the write-allocate
            // fill updates the caches but produces no retirement stall,
            // and the paper's counters are load events. Tracked
            // separately. The LLC fill (write-allocate) happens on the
            // L2-miss path; inclusive-victim handling is load-side only.
            let mut missed = false;
            if !c.l1d.access(line).hit {
                missed = true;
                if !c.l2.access(line).hit {
                    let out = self.llc_access(c.socket, line);
                    if self.numa && !out.hit {
                        // Remote-homed write-allocate fill: one QPI hop.
                        self.note_llc_fill(c, mi, c.socket, line);
                    }
                }
            }
            if missed {
                c.counts.store_misses += 1;
                c.module_counts[mi].store_misses += 1;
            }
            // Write-invalidation: a store by one core removes the line
            // from every other core's private caches (MESI downgrade-to-
            // invalid) — published to their queues, applied at their next
            // access boundary.
            if self.cores.len() > 1 {
                self.publish_invalidate(core, line);
            }
        } else {
            c.counts.loads += 1;
            c.module_counts[mi].loads += 1;
            if !c.l1d.access(line).hit {
                Self::bump(c, module, StallEvent::L1d);
                if !c.l2.access(line).hit {
                    Self::bump(c, module, StallEvent::L2d);
                    let out = self.llc_access(c.socket, line);
                    if !out.hit {
                        Self::bump(c, module, StallEvent::LlcD);
                        if self.numa {
                            // DRAM fill from a remote socket's memory:
                            // one QPI hop on top of the local miss.
                            self.note_llc_fill(c, mi, c.socket, line);
                        }
                        if self.cfg.inclusive_llc {
                            if let Some(v) = out.evicted {
                                // Inclusive-LLC back-invalidation: this
                                // core inline, the others via their queues.
                                c.l1i.invalidate(v);
                                c.l1d.invalidate(v);
                                c.l2.invalidate(v);
                                self.publish_back_invalidate(core, v);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Fill `line` through the hierarchy without charging stall-class
    /// misses (hardware-prefetched trailing lines of a sequential read).
    #[inline]
    fn line_prefetch(&self, c: &mut Core, core: usize, module: ModuleId, line: u64, store: bool) {
        let mi = module.0 as usize;
        if store {
            c.counts.stores += 1;
            c.module_counts[mi].stores += 1;
        } else {
            c.counts.loads += 1;
            c.module_counts[mi].loads += 1;
        }
        if !c.l1d.access(line).hit {
            c.l2.access(line);
            self.llc_access(c.socket, line);
        }
        if store && self.cores.len() > 1 {
            self.publish_invalidate(core, line);
        }
    }

    /// Publish a store invalidation to every other *active* core's queue,
    /// tagged with the writer's socket (zero bits on a single-socket
    /// machine, so queue entries are unchanged from the pre-NUMA encoding).
    fn publish_invalidate(&self, from: usize, line: u64) {
        let tagged = line | ((self.socket_of(from) as u64) << ORIGIN_SHIFT);
        for slot in &self.cores {
            if slot.id != from && slot.active.load(Ordering::Acquire) {
                slot.queue.push(tagged);
            }
        }
    }

    /// Publish an inclusive-LLC back-invalidation to the other active
    /// cores (the evicting core applies it inline).
    fn publish_back_invalidate(&self, from: usize, line: u64) {
        for slot in &self.cores {
            if slot.id != from && slot.active.load(Ordering::Acquire) {
                slot.queue.push(line | BACK_INVALIDATE);
            }
        }
    }

    #[inline]
    fn bump(core: &mut Core, module: ModuleId, e: StallEvent) {
        core.counts.record_miss(e);
        core.module_counts[module.0 as usize].record_miss(e);
    }

    /// Prime the shared LLC with the allocated data region (sequentially,
    /// newest lines last). Used after an offline bulk load: the paper's
    /// 60-second warm-up leaves a small database fully cache-resident;
    /// this reproduces that starting state without charging any events.
    /// For working sets beyond LLC capacity only the most recently
    /// touched tail stays resident, as it would on real hardware.
    pub fn warm_data(&self) {
        // Line spans of every arena with allocations (one span on a
        // single-socket machine — identical to the pre-NUMA walk).
        let spans: Vec<(u64, u64)> = self
            .data
            .lock()
            .unwrap()
            .iter()
            .filter(|a| a.used() > 0)
            .map(|a| {
                (
                    a.base() / crate::LINE,
                    (a.base() + a.used()).div_ceil(crate::LINE),
                )
            })
            .collect();
        // Walk stripe by stripe instead of line by line: one lock
        // acquisition per stripe and a sequential sweep of that stripe's
        // sets, instead of bouncing across all stripes every line. The
        // lines of stripe `s` are exactly those with `line % stripes == s`
        // (stripes divides the set count), and stepping by `stripes`
        // preserves the within-set access order, so the resulting
        // residency and LRU state are identical to the flat walk. Every
        // socket's LLC is warmed the same way: after a bulk load any
        // socket may serve the first reads, and warm-up windows converge
        // residency to steady state anyway.
        let stripes = self.llc_stripes_per_socket as u64;
        for socket in 0..self.cfg.sockets {
            for s in 0..stripes {
                let mut guard = self.llc[socket * self.llc_stripes_per_socket + s as usize].lock();
                let cache = guard.cache();
                for &(base, end) in &spans {
                    let mut line = base + (s + stripes - base % stripes) % stripes;
                    while line < end {
                        let set = if self.llc_set_mask != u64::MAX {
                            (line & self.llc_set_mask) as usize
                        } else {
                            (line % self.llc_sets) as usize
                        };
                        debug_assert_eq!(set & self.llc_stripe_mask, s as usize);
                        cache.access_at(set >> self.llc_stripe_shift, line);
                        line += stripes;
                    }
                }
            }
        }
    }

    /// Flush all caches (cold restart) without resetting counters. Pending
    /// queued invalidations are applied first, preserving their
    /// resident-at-arrival counting semantics.
    pub fn flush_caches(&self) {
        for i in 0..self.cores.len() {
            let mut g = self.core_enter(i, false);
            let (slot, c) = g.parts();
            self.drain_pending(slot, c);
            c.l1i.flush();
            c.l1d.flush();
            c.l2.flush();
        }
        for stripe in &self.llc {
            stripe.lock().cache().flush();
        }
    }

    /// Diagnostic: lifetime LLC miss ratio across all traffic.
    pub fn llc_miss_ratio(&self) -> f64 {
        let (mut acc, mut miss) = (0u64, 0u64);
        for stripe in &self.llc {
            let mut s = stripe.lock();
            acc += s.cache().accesses();
            miss += s.cache().misses();
        }
        if acc == 0 {
            0.0
        } else {
            miss as f64 / acc as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(cores: usize) -> Machine {
        Machine::new(MachineConfig::ivy_bridge(cores))
    }

    #[test]
    fn core_offline_freezes_only_that_core() {
        let m = machine(2);
        let id = m.register_module(ModuleSpec::new("work", 4096).reuse(4.0));
        let buf = m.alloc_data(4096, 64);
        m.fetch_code(0, id, 1_000);
        m.fetch_code(1, id, 1_000);

        m.set_core_offline(0, true);
        assert!(m.core_offline(0));
        assert!(!m.core_offline(1));
        let c0 = m.counters(0);
        m.fetch_code(0, id, 5_000);
        m.data_access(0, id, buf, 8, false);
        m.fetch_code(1, id, 5_000);
        m.data_access(1, id, buf, 8, true);
        let d0 = m.counters(0).delta(&c0);
        assert_eq!(d0.instructions, 0, "offline core's counters are frozen");
        assert_eq!(d0.loads, 0);
        assert_eq!(m.counters(1).instructions, 6_000, "core 1 unaffected");

        m.set_core_offline(0, false);
        m.fetch_code(0, id, 2_000);
        let d0 = m.counters(0).delta(&c0);
        assert_eq!(d0.instructions, 2_000, "traffic resumes once back online");
    }

    #[test]
    fn tiny_module_becomes_l1i_resident() {
        let m = machine(1);
        let id = m.register_module(ModuleSpec::new("tight_loop", 2048).reuse(8.0));
        m.fetch_code(0, id, 100_000); // warmup
        let before = m.counters(0);
        m.fetch_code(0, id, 1_000_000);
        let d = m.counters(0).delta(&before);
        assert_eq!(d.instructions, 1_000_000);
        // 2 KB of code fits L1I: essentially no instruction misses.
        assert!(
            d.miss(StallEvent::L1i) < 10,
            "l1i={}",
            d.miss(StallEvent::L1i)
        );
    }

    #[test]
    fn oversized_module_thrashes_l1i_but_fits_l2() {
        let m = machine(1);
        // 128 KB hot path: > 32 KB L1I, < 256 KB L2.
        let id = m.register_module(
            ModuleSpec::new("fat", 128 << 10)
                .reuse(1.0)
                .branchiness(0.0),
        );
        m.fetch_code(0, id, 200_000);
        let before = m.counters(0);
        m.fetch_code(0, id, 1_000_000);
        let d = m.counters(0).delta(&before);
        let l1i = d.miss(StallEvent::L1i);
        let l2i = d.miss(StallEvent::L2i);
        let llci = d.miss(StallEvent::LlcI);
        // Cyclic 128 KB sweep misses L1I on ~every unique line...
        assert!(l1i > 50_000, "l1i={l1i}");
        // ...but the whole path is L2- and LLC-resident.
        assert!(l2i < l1i / 20, "l2i={l2i} vs l1i={l1i}");
        assert!(llci < 100, "llci={llci}");
    }

    #[test]
    fn data_working_set_larger_than_llc_misses_dram() {
        let m = machine(1);
        let region = 64u64 << 20; // 64 MB > 16 MB LLC
        let base = m.alloc_data(region, 64);
        let mut rng = XorShift64::new(99);
        // warmup + measure random line touches
        for _ in 0..200_000 {
            let off = rng.next_below(region / 64) * 64;
            m.data_access(0, ModuleId::UNATTRIBUTED, base + off, 8, false);
        }
        let before = m.counters(0);
        for _ in 0..100_000 {
            let off = rng.next_below(region / 64) * 64;
            m.data_access(0, ModuleId::UNATTRIBUTED, base + off, 8, false);
        }
        let d = m.counters(0).delta(&before);
        // Most random touches of a 4x-LLC working set miss the LLC.
        assert!(
            d.miss(StallEvent::LlcD) > 50_000,
            "llcd={}",
            d.miss(StallEvent::LlcD)
        );
    }

    #[test]
    fn small_data_working_set_stays_cached() {
        let m = machine(1);
        let region = 1u64 << 20; // 1 MB fits LLC (and mostly L2)
        let base = m.alloc_data(region, 64);
        let mut rng = XorShift64::new(7);
        for _ in 0..300_000 {
            let off = rng.next_below(region / 64) * 64;
            m.data_access(0, ModuleId::UNATTRIBUTED, base + off, 8, false);
        }
        let before = m.counters(0);
        for _ in 0..50_000 {
            let off = rng.next_below(region / 64) * 64;
            m.data_access(0, ModuleId::UNATTRIBUTED, base + off, 8, false);
        }
        let d = m.counters(0).delta(&before);
        // A handful of compulsory misses may remain (lines never drawn during
        // warmup); anything more would mean the LLC is not retaining the set.
        assert!(
            d.miss(StallEvent::LlcD) < 20,
            "llcd={}",
            d.miss(StallEvent::LlcD)
        );
    }

    #[test]
    fn inclusive_llc_back_invalidates_private_caches() {
        let run = |inclusive: bool| {
            let mut cfg = MachineConfig::ivy_bridge(1);
            cfg.inclusive_llc = inclusive;
            let m = Machine::new(cfg);
            // A hot line, then enough LLC pressure to evict it from LLC.
            let hot = m.alloc_data(64, 64);
            m.data_access(0, ModuleId::UNATTRIBUTED, hot, 8, false);
            let sweep = m.alloc_data(64 << 20, 64);
            for off in (0..(48u64 << 20)).step_by(64) {
                m.data_access(0, ModuleId::UNATTRIBUTED, sweep + off, 8, false);
            }
            // Touch the hot line again: with an inclusive LLC it was
            // back-invalidated from L1D and must miss.
            let before = m.counters(0);
            m.data_access(0, ModuleId::UNATTRIBUTED, hot, 8, false);
            m.counters(0).delta(&before).miss(StallEvent::L1d)
        };
        assert_eq!(run(true), 1, "inclusive LLC must back-invalidate");
        // Non-inclusive: the line survives in L1D (the sweep bypasses its
        // set only rarely; L1D has 64 sets and the sweep cycles them, so
        // allow either outcome but require the inclusive case to differ
        // from a freshly-warm hit path).
    }

    #[test]
    fn next_line_prefetcher_cuts_sequential_i_misses() {
        let run = |prefetch: bool| {
            let mut cfg = MachineConfig::ivy_bridge(1);
            cfg.i_prefetch_next_line = prefetch;
            let m = Machine::new(cfg);
            // Sequential walk over a >L1I footprint: the prefetcher's
            // best case.
            let id = m.register_module(
                ModuleSpec::new("seq", 128 << 10)
                    .reuse(1.0)
                    .branchiness(0.0),
            );
            m.fetch_code(0, id, 400_000);
            let before = m.counters(0);
            m.fetch_code(0, id, 1_000_000);
            m.counters(0).delta(&before).miss(StallEvent::L1i)
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with * 3 < without * 2,
            "prefetcher should cut sequential L1I misses: {with} vs {without}"
        );
    }

    #[test]
    fn writes_invalidate_other_cores() {
        let m = machine(2);
        let addr = m.alloc_data(64, 64);
        // Core 1 caches the line.
        m.data_access(1, ModuleId::UNATTRIBUTED, addr, 8, false);
        let before = m.counters(1);
        // Core 0 writes it -> core 1 loses it (the queued invalidation is
        // applied at core 1's next access boundary — here, the snapshot).
        m.data_access(0, ModuleId::UNATTRIBUTED, addr, 8, true);
        assert_eq!(m.counters(1).invalidations, before.invalidations + 1);
        // Core 1 re-reads: L1D miss again.
        let before = m.counters(1);
        m.data_access(1, ModuleId::UNATTRIBUTED, addr, 8, false);
        let d = m.counters(1).delta(&before);
        assert_eq!(d.miss(StallEvent::L1d), 1);
    }

    #[test]
    fn stores_skip_inactive_cores_entirely() {
        let m = machine(4);
        let addr = m.alloc_data(64, 64);
        // Only core 1 is active besides the writer.
        m.data_access(1, ModuleId::UNATTRIBUTED, addr, 8, false);
        m.data_access(0, ModuleId::UNATTRIBUTED, addr, 8, true);
        let (pushed, _) = m.coherence_totals();
        assert_eq!(pushed, 1, "cores 2 and 3 never ran: no queue traffic");
        assert_eq!(m.counters(2).invalidations, 0);
        assert_eq!(m.counters(3).invalidations, 0);
    }

    #[test]
    fn module_counters_sum_to_core_counters() {
        let m = machine(1);
        let a = m.register_module(ModuleSpec::new("a", 64 << 10));
        let b = m.register_module(ModuleSpec::new("b", 8 << 10));
        m.fetch_code(0, a, 50_000);
        m.fetch_code(0, b, 20_000);
        let addr = m.alloc_data(4096, 64);
        m.data_access(0, a, addr, 64, false);
        m.data_access(0, b, addr + 2048, 64, true);
        let total = m.counters(0);
        let mut sum = EventCounts::default();
        for mc in &m.module_counters(0) {
            sum.add(mc);
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn multi_byte_access_touches_all_spanned_lines() {
        let m = machine(1);
        let addr = m.alloc_data(8192, 64);
        let before = m.counters(0);
        m.data_access(0, ModuleId::UNATTRIBUTED, addr, 200, false); // 4 lines
        let d = m.counters(0).delta(&before);
        assert_eq!(d.loads, 4);
        // Access straddling a line boundary:
        let before = m.counters(0);
        m.data_access(0, ModuleId::UNATTRIBUTED, addr + 60, 8, false);
        assert_eq!(m.counters(0).delta(&before).loads, 2);
    }

    #[test]
    fn code_and_data_share_l2() {
        let m = machine(1);
        // A 200 KB code path nearly fills L2...
        let code = m.register_module(
            ModuleSpec::new("hot", 200 << 10)
                .reuse(1.0)
                .branchiness(0.0),
        );
        for _ in 0..10 {
            m.fetch_code(0, code, 800_000);
        }
        let before = m.counters(0);
        m.fetch_code(0, code, 800_000);
        let quiet_l2i = m.counters(0).delta(&before).miss(StallEvent::L2i);
        // ...then a 200 KB data sweep evicts code from L2 and L2I misses rise.
        let data = m.alloc_data(256 << 10, 64);
        for rep in 0..3 {
            let _ = rep;
            for off in (0..(200u64 << 10)).step_by(64) {
                m.data_access(0, ModuleId::UNATTRIBUTED, data + off, 8, false);
            }
            m.fetch_code(0, code, 800_000);
        }
        let before = m.counters(0);
        for off in (0..(200u64 << 10)).step_by(64) {
            m.data_access(0, ModuleId::UNATTRIBUTED, data + off, 8, false);
        }
        m.fetch_code(0, code, 800_000);
        let noisy_l2i = m.counters(0).delta(&before).miss(StallEvent::L2i);
        assert!(
            noisy_l2i > quiet_l2i + 100,
            "data pressure should evict code from L2: {noisy_l2i} vs {quiet_l2i}"
        );
    }

    #[test]
    fn concurrent_cores_sum_like_serial_cores() {
        // Thread-safety smoke: two threads hammering disjoint cores through
        // a shared machine must retire exactly what they issued.
        let m = std::sync::Arc::new(machine(2));
        let id = m.register_module(ModuleSpec::new("par", 32 << 10));
        let data = m.alloc_data(1 << 20, 64);
        std::thread::scope(|s| {
            for core in 0..2usize {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        m.fetch_code(core, id, 50);
                        m.data_access(core, id, data + (i % 1000) * 64, 8, core == 1);
                    }
                });
            }
        });
        for core in 0..2 {
            let c = m.counters(core);
            assert_eq!(c.instructions, 1_000_000, "core {core}");
            assert_eq!(c.loads + c.stores, 20_000, "core {core}");
        }
        let (pushed, applied) = m.coherence_totals();
        assert_eq!(pushed, applied, "queued invalidations were lost");
    }

    #[test]
    fn batched_ops_match_separate_calls() {
        let run = |batched: bool| {
            let m = machine(1);
            let id = m.register_module(ModuleSpec::new("b", 24 << 10));
            let d = m.code_desc(id);
            let addr = m.alloc_data(1 << 16, 64);
            if batched {
                let ops: Vec<BatchOp> = (0..200u64)
                    .flat_map(|i| {
                        [
                            BatchOp::Exec(100),
                            BatchOp::Read {
                                addr: addr + (i % 512) * 64,
                                len: 96,
                            },
                            BatchOp::Write {
                                addr: addr + (i % 64) * 64,
                                len: 8,
                            },
                        ]
                    })
                    .collect();
                m.run_batch(0, id, &d, &ops);
            } else {
                for i in 0..200u64 {
                    m.fetch_code(0, id, 100);
                    m.data_access(0, id, addr + (i % 512) * 64, 96, false);
                    m.data_access(0, id, addr + (i % 64) * 64, 8, true);
                }
            }
            (m.counters(0), m.module_counters(0))
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn single_socket_numa_config_is_bit_identical() {
        // `numa(1, n)` must behave exactly like `ivy_bridge(n)`: same
        // allocation addresses, same counters, zero remote accesses.
        let run = |cfg: MachineConfig| {
            let m = Machine::new(cfg);
            let id = m.register_module(ModuleSpec::new("w", 64 << 10).reuse(2.0));
            let buf = m.alloc_data(1 << 20, 64);
            for i in 0..20_000u64 {
                m.fetch_code(0, id, 40);
                m.data_access(0, id, buf + (i % 8192) * 64, 16, false);
                m.data_access(1, id, buf + (i % 64) * 64, 8, true);
            }
            (buf, m.counters(0), m.counters(1), m.module_counters(0))
        };
        let a = run(MachineConfig::ivy_bridge(2));
        let b = run(MachineConfig::numa(1, 2));
        assert_eq!(a, b);
        assert_eq!(a.1.remote_accesses, 0);
        assert_eq!(a.2.remote_accesses, 0);
    }

    #[test]
    fn alloc_home_routes_allocations_to_tag_arenas() {
        let m = Machine::new(MachineConfig::numa(2, 1));
        let arena = (DATA_REGION_SIZE / (MAX_HOME_TAGS as u64 + 1)) & !4095;
        let untagged = m.alloc_data(64, 64);
        assert!(untagged < DATA_REGION_BASE + arena);
        assert_eq!(m.set_alloc_home(Some(3)), None);
        let tagged = m.alloc_data(64, 64);
        assert_eq!(m.set_alloc_home(None), Some(3));
        assert_eq!((tagged - DATA_REGION_BASE) / arena, 4, "arena 1 + tag");
    }

    #[test]
    fn remote_homed_fills_charge_remote_accesses() {
        // Two sockets, one core each. Tag 0 homed on socket 0, tag 1 on
        // socket 1; each core reads both regions cold (compulsory LLC
        // misses) and must be charged only for the remote-homed one.
        let m = Machine::new(MachineConfig::numa(2, 1));
        m.set_alloc_home(Some(0));
        let on0 = m.alloc_data(64 << 10, 64);
        m.set_alloc_home(Some(1));
        let on1 = m.alloc_data(64 << 10, 64);
        m.set_alloc_home(None);
        m.set_tag_home(0, 0);
        m.set_tag_home(1, 1);
        for i in 0..1024u64 {
            m.data_access(0, ModuleId::UNATTRIBUTED, on0 + i * 64, 8, false);
            m.data_access(1, ModuleId::UNATTRIBUTED, on1 + i * 64, 8, false);
        }
        assert_eq!(m.counters(0).remote_accesses, 0, "local reads stay local");
        assert_eq!(m.counters(1).remote_accesses, 0);
        for i in 0..1024u64 {
            m.data_access(0, ModuleId::UNATTRIBUTED, on1 + i * 64, 8, false);
        }
        let c0 = m.counters(0);
        assert_eq!(c0.remote_accesses, 1024, "every cold fill crossed QPI");
        assert_eq!(c0.miss(StallEvent::LlcD), 2048);
    }

    #[test]
    fn remote_invalidations_charge_the_receiver() {
        // Writer on the other socket: the receiver's resident line was
        // downgraded across the interconnect.
        let m = Machine::new(MachineConfig::numa(2, 1));
        // Home the data on the reader's socket so the only cross-socket
        // event is the invalidation itself.
        m.set_default_home(Some(1));
        let addr = m.alloc_data(64, 64);
        m.data_access(1, ModuleId::UNATTRIBUTED, addr, 8, false);
        m.data_access(0, ModuleId::UNATTRIBUTED, addr, 8, true);
        let c1 = m.counters(1);
        assert_eq!(c1.invalidations, 1);
        assert_eq!(c1.remote_accesses, 1);

        // Writer on the same socket: an invalidation but no QPI crossing.
        let m = Machine::new(MachineConfig::numa(2, 2));
        let addr = m.alloc_data(64, 64);
        m.data_access(1, ModuleId::UNATTRIBUTED, addr, 8, false);
        m.data_access(0, ModuleId::UNATTRIBUTED, addr, 8, true);
        let c1 = m.counters(1);
        assert_eq!(c1.invalidations, 1);
        assert_eq!(c1.remote_accesses, 0);
    }

    #[test]
    fn rehome_hot_tags_follows_dominant_socket() {
        let m = Machine::new(MachineConfig::numa(2, 1));
        m.set_alloc_home(Some(5));
        let buf = m.alloc_data(1 << 20, 64);
        m.set_alloc_home(None);
        m.set_tag_home(5, 0);
        // Socket 1 does all the (cold, LLC-missing) traffic on tag 5.
        for i in 0..4096u64 {
            m.data_access(1, ModuleId::UNATTRIBUTED, buf + i * 64, 8, false);
        }
        let before = m.counters(1);
        assert_eq!(before.remote_accesses, 4096);
        assert_eq!(m.rehome_hot_tags(100, 0.6), 1, "tag 5 migrates");
        assert_eq!(m.tag_home(5), 1);
        // After migration, fresh cold fills on socket 1 are local. Flush
        // so the same lines miss the LLC again.
        m.flush_caches();
        for i in 0..4096u64 {
            m.data_access(1, ModuleId::UNATTRIBUTED, buf + i * 64, 8, false);
        }
        assert_eq!(m.counters(1).delta(&before).remote_accesses, 0);
        // The observation window was reset: no further migration.
        assert_eq!(m.rehome_hot_tags(100, 0.6), 0);
    }

    #[test]
    fn llc_striping_is_observation_equivalent_to_single_lock() {
        // The striped LLC must hit/miss/evict exactly like one monolithic
        // cache: sets are independent, and each maps to one stripe.
        let cfg = MachineConfig::ivy_bridge(1);
        let mut mono = Cache::new(cfg.llc);
        let m = Machine::new(cfg);
        let mut rng = XorShift64::new(1234);
        for _ in 0..200_000 {
            // Random lines over 64 MB: deep LLC pressure with evictions.
            let line = (DATA_REGION_BASE / 64) + rng.next_below(1 << 20);
            let a = mono.access(line);
            let b = m.llc_access(0, line);
            assert_eq!(a, b);
        }
        assert_eq!(mono.misses(), {
            let mut misses = 0;
            for s in &m.llc {
                misses += s.lock().cache().misses();
            }
            misses
        });
    }
}
