//! Simulated address-space allocation.
//!
//! Engines place every page, heap row, index node, log buffer, and piece of
//! runtime metadata at a simulated address; the cache hierarchy observes
//! those addresses. A simple bump allocator suffices — the simulator never
//! stores bytes at these addresses (the engines keep the real data in
//! ordinary Rust structures), it only needs distinct, stable, line-aligned
//! placements.

/// Bump allocator over a region of the simulated address space.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    base: u64,
    next: u64,
    limit: u64,
}

impl AddressSpace {
    /// A region `[base, base + size)`.
    pub fn new(base: u64, size: u64) -> Self {
        AddressSpace {
            base,
            next: base,
            limit: base.checked_add(size).expect("region overflow"),
        }
    }

    /// Allocate `size` bytes aligned to `align` (a power of two).
    /// Panics if the region is exhausted — simulated regions are sized far
    /// beyond any experiment's needs, so exhaustion is a configuration bug.
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = (self.next + align - 1) & !(align - 1);
        let end = aligned.checked_add(size.max(1)).expect("address overflow");
        assert!(end <= self.limit, "simulated address region exhausted");
        self.next = end;
        aligned
    }

    /// Bytes handed out so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.next - self.base
    }

    /// Start of the region.
    pub fn base(&self) -> u64 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = AddressSpace::new(0x1000, 1 << 20);
        let x = a.alloc(100, 64);
        let y = a.alloc(100, 64);
        assert_eq!(x % 64, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= x + 100);
    }

    #[test]
    fn zero_sized_allocations_still_distinct() {
        let mut a = AddressSpace::new(0, 1 << 20);
        let x = a.alloc(0, 1);
        let y = a.alloc(0, 1);
        assert_ne!(x, y);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = AddressSpace::new(0, 128);
        let _ = a.alloc(256, 64);
    }

    #[test]
    fn used_tracks_consumption() {
        let mut a = AddressSpace::new(0x40, 1 << 16);
        assert_eq!(a.used(), 0);
        a.alloc(64, 64);
        assert_eq!(a.used(), 64);
    }
}
