//! Machine configuration: cache geometry, miss penalties, and the cycle
//! model — all defaulted to Table 1 of Sirin et al. (SIGMOD'16).

use serde::{Deserialize, Serialize};

use crate::counters::{EventCounts, StallEvent};

/// Geometry of one set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (64 on Ivy Bridge).
    pub line: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheGeometry {
    /// Construct a geometry; panics on non-power-of-two or inconsistent
    /// parameters so misconfiguration fails loudly at startup.
    pub fn new(size: u64, line: u32, ways: u32) -> Self {
        assert!(size.is_power_of_two(), "cache size must be a power of two");
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(ways > 0, "cache must have at least one way");
        let g = CacheGeometry { size, line, ways };
        assert!(g.sets() >= 1, "size / (line * ways) must be >= 1");
        g
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / (u64::from(self.line) * u64::from(self.ways))
    }

    /// Number of lines this cache can hold.
    pub fn lines(&self) -> u64 {
        self.size / u64::from(self.line)
    }
}

/// How much of each miss class's latency actually stalls retirement.
///
/// An out-of-order core overlaps part of the data-miss latency with useful
/// work (memory-level parallelism), while front-end (instruction) misses
/// starve the pipeline almost completely. The paper acknowledges exactly
/// this imprecision ("one cannot be precise while showing the stall cycles
/// breakdown on an out-of-order processor") and therefore *reports* raw
/// `misses x penalty` side by side; we follow suit for reporting, and use
/// these factors only to derive total cycles (and hence IPC).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlapFactors {
    pub l1i: f64,
    pub l2i: f64,
    pub llc_i: f64,
    pub l1d: f64,
    pub l2d: f64,
    pub llc_d: f64,
}

impl OverlapFactors {
    /// Default weights: front-end misses stall fully; near data misses are
    /// partially hidden by the out-of-order window; LLC data misses weigh
    /// *above* their nominal 167-cycle penalty because the effective DRAM
    /// latency under row misses / remote-socket traffic exceeds the
    /// nominal figure the bars are charged with.
    pub const fn ivy_bridge() -> Self {
        OverlapFactors {
            l1i: 1.0,
            l2i: 1.0,
            llc_i: 1.2,
            l1d: 0.5,
            l2d: 0.7,
            llc_d: 1.35,
        }
    }

    /// Factor for one stall event class.
    pub fn get(&self, e: StallEvent) -> f64 {
        match e {
            StallEvent::L1i => self.l1i,
            StallEvent::L2i => self.l2i,
            StallEvent::LlcI => self.llc_i,
            StallEvent::L1d => self.l1d,
            StallEvent::L2d => self.l2d,
            StallEvent::LlcD => self.llc_d,
        }
    }
}

/// Full machine description.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Per-core L1 instruction cache.
    pub l1i: CacheGeometry,
    /// Per-core L1 data cache.
    pub l1d: CacheGeometry,
    /// Per-core unified L2.
    pub l2: CacheGeometry,
    /// Shared last-level cache.
    pub llc: CacheGeometry,
    /// Penalty of an L1 miss that hits L2 (cycles).
    pub l1_penalty: u32,
    /// Penalty of an L2 miss that hits LLC (cycles).
    pub l2_penalty: u32,
    /// Penalty of an LLC miss (cycles; the paper averages local and remote
    /// DRAM on its two-socket machine).
    pub llc_penalty: u32,
    /// IPC of a miss-free instruction stream. The paper measures 3.0 with a
    /// register-to-register loop on a 4-wide machine.
    pub ideal_ipc: f64,
    /// Maximum instructions retired per cycle (4 on Ivy Bridge).
    pub retire_width: u32,
    /// Core clock in GHz (2.0 on the paper's E5-2640 v2).
    pub clock_ghz: f64,
    /// Stall overlap model (see [`OverlapFactors`]).
    pub overlap: OverlapFactors,
    /// Cycles lost per branch misprediction (front-end refill).
    pub mispredict_penalty: f64,
    /// Next-line instruction prefetcher: an L1I miss also pulls the
    /// following line into L1I/L2 (no stall charged). Off by default so
    /// the headline figures match the paper's counter semantics; the
    /// `ablation-prefetch` experiment flips it.
    pub i_prefetch_next_line: bool,
    /// Inclusive LLC: evicting a line from the LLC back-invalidates it in
    /// every core's private caches (Ivy Bridge's LLC is inclusive). Off by
    /// default — with a 16 MB LLC over 288 KB of private capacity the
    /// effect on the headline figures is marginal, but the knob lets the
    /// back-invalidation pathology be studied.
    pub inclusive_llc: bool,
    /// Number of simulated cores sharing the LLC.
    pub cores: usize,
    /// Number of sockets. Cores are laid out socket-major (core `c` lives
    /// on socket `c / (cores / sockets)`); each socket gets its own LLC
    /// instance. 1 (the default) reproduces the paper's single-socket
    /// machine bit for bit.
    #[serde(default = "default_sockets")]
    pub sockets: usize,
    /// Extra cycles charged per cross-socket (QPI-like) access: a demand
    /// fill whose home memory is on another socket, or a coherence
    /// invalidation arriving from a remote socket. The paper's E5-2640 v2
    /// pair shows remote DRAM ~1.7x local; 110 cycles on top of the
    /// 167-cycle local penalty matches that ratio.
    #[serde(default = "default_remote_penalty")]
    pub remote_penalty: u32,
}

fn default_sockets() -> usize {
    1
}

fn default_remote_penalty() -> u32 {
    110
}

impl MachineConfig {
    /// The paper's server (Table 1): 32 KB L1I + 32 KB L1D (8-way),
    /// 256 KB L2 (8-way), 20 MB shared LLC (20-way), 64 B lines,
    /// penalties 8 / 19 / 167 cycles, 2.0 GHz, 4-wide retire.
    pub fn ivy_bridge(cores: usize) -> Self {
        assert!((1..=64).contains(&cores), "1..=64 cores supported");
        MachineConfig {
            l1i: CacheGeometry::new(32 << 10, 64, 8),
            l1d: CacheGeometry::new(32 << 10, 64, 8),
            l2: CacheGeometry::new(256 << 10, 64, 8),
            // 20 MB is not a power of two; model it as 16 MB + keep 20 ways.
            // The fits-in-LLC boundary the paper exercises (10 MB vs 10 GB)
            // is preserved.
            llc: CacheGeometry::new(16 << 20, 64, 16),
            l1_penalty: 8,
            l2_penalty: 19,
            llc_penalty: 167,
            ideal_ipc: 3.0,
            retire_width: 4,
            clock_ghz: 2.0,
            overlap: OverlapFactors::ivy_bridge(),
            mispredict_penalty: 14.0,
            i_prefetch_next_line: false,
            inclusive_llc: false,
            cores,
            sockets: default_sockets(),
            remote_penalty: default_remote_penalty(),
        }
    }

    /// A multi-socket machine: `sockets` Table-1 sockets of
    /// `cores_per_socket` cores each, one LLC per socket, linked by a
    /// QPI-like remote-access penalty. `numa(1, n)` is exactly
    /// [`MachineConfig::ivy_bridge`]`(n)`.
    pub fn numa(sockets: usize, cores_per_socket: usize) -> Self {
        assert!(sockets >= 1, "at least one socket");
        assert!(cores_per_socket >= 1, "at least one core per socket");
        let mut cfg = Self::ivy_bridge(sockets * cores_per_socket);
        cfg.sockets = sockets;
        cfg
    }

    /// Cores per socket (cores are laid out socket-major).
    pub fn cores_per_socket(&self) -> usize {
        debug_assert!(self.cores.is_multiple_of(self.sockets));
        self.cores / self.sockets
    }

    /// The socket a core belongs to.
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket()
    }

    /// Penalty (cycles) charged for one miss of class `e`, as the paper
    /// charges it: each level's misses are multiplied by *that level's*
    /// penalty, so an access missing everywhere contributes to all three
    /// components.
    pub fn penalty(&self, e: StallEvent) -> u32 {
        match e {
            StallEvent::L1i | StallEvent::L1d => self.l1_penalty,
            StallEvent::L2i | StallEvent::L2d => self.l2_penalty,
            StallEvent::LlcI | StallEvent::LlcD => self.llc_penalty,
        }
    }

    /// Raw stall cycles per event class: `misses x penalty` (the quantity
    /// the paper plots side by side).
    pub fn stall_cycles(&self, c: &EventCounts) -> [f64; 6] {
        let mut out = [0.0; 6];
        for e in StallEvent::ALL {
            out[e as usize] = c.misses[e as usize] as f64 * f64::from(self.penalty(e));
        }
        out
    }

    /// Estimated total execution cycles for a counter delta:
    /// `instructions / ideal_ipc + sum(misses x penalty x overlap)`.
    pub fn cycles(&self, c: &EventCounts) -> f64 {
        let mut cy = c.instructions as f64 / self.ideal_ipc;
        cy += c.mispredicts as f64 * self.mispredict_penalty;
        // Store-buffer pressure: a deep-missing store occasionally backs
        // retirement up; a small fraction of the DRAM latency on average.
        cy += c.store_misses as f64 * 12.0;
        for e in StallEvent::ALL {
            cy += c.misses[e as usize] as f64 * f64::from(self.penalty(e)) * self.overlap.get(e);
        }
        // QPI hop on top of the local miss penalty already charged above.
        // Zero on single-socket machines (no remote accesses are counted).
        cy += c.remote_accesses as f64 * f64::from(self.remote_penalty);
        cy
    }

    /// Instructions retired per cycle for a counter delta, clamped to the
    /// retire width.
    pub fn ipc(&self, c: &EventCounts) -> f64 {
        let cy = self.cycles(c);
        if cy <= 0.0 {
            return 0.0;
        }
        (c.instructions as f64 / cy).min(f64::from(self.retire_width))
    }

    /// Simulated wall-clock seconds for a counter delta.
    pub fn seconds(&self, c: &EventCounts) -> f64 {
        self.cycles(c) / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivy_bridge_matches_table1() {
        let cfg = MachineConfig::ivy_bridge(1);
        assert_eq!(cfg.l1i.size, 32 << 10);
        assert_eq!(cfg.l1d.size, 32 << 10);
        assert_eq!(cfg.l2.size, 256 << 10);
        assert_eq!(cfg.l1_penalty, 8);
        assert_eq!(cfg.l2_penalty, 19);
        assert_eq!(cfg.llc_penalty, 167);
        assert_eq!(cfg.retire_width, 4);
        assert!((cfg.ideal_ipc - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn geometry_sets_and_lines() {
        let g = CacheGeometry::new(32 << 10, 64, 8);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_odd_size() {
        let _ = CacheGeometry::new(20 << 20, 64, 20);
    }

    #[test]
    fn miss_free_stream_runs_at_ideal_ipc() {
        let cfg = MachineConfig::ivy_bridge(1);
        let c = EventCounts {
            instructions: 30_000,
            ..Default::default()
        };
        assert!((cfg.ipc(&c) - 3.0).abs() < 1e-9);
        assert_eq!(cfg.cycles(&c), 10_000.0);
    }

    #[test]
    fn stalls_lower_ipc() {
        let cfg = MachineConfig::ivy_bridge(1);
        let mut c = EventCounts {
            instructions: 1000,
            ..Default::default()
        };
        c.misses[StallEvent::LlcD as usize] = 10;
        assert!(cfg.ipc(&c) < 1.0);
        let stalls = cfg.stall_cycles(&c);
        assert_eq!(stalls[StallEvent::LlcD as usize], 1670.0);
    }

    #[test]
    fn numa_layout_is_socket_major() {
        let cfg = MachineConfig::numa(2, 4);
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.sockets, 2);
        assert_eq!(cfg.cores_per_socket(), 4);
        assert_eq!(cfg.socket_of(0), 0);
        assert_eq!(cfg.socket_of(3), 0);
        assert_eq!(cfg.socket_of(4), 1);
        assert_eq!(cfg.socket_of(7), 1);
    }

    #[test]
    fn single_socket_numa_matches_ivy_bridge() {
        let a = MachineConfig::numa(1, 2);
        let b = MachineConfig::ivy_bridge(2);
        assert_eq!(a.sockets, b.sockets);
        assert_eq!(a.cores, b.cores);
        assert_eq!(a.llc, b.llc);
        assert_eq!(a.remote_penalty, b.remote_penalty);
    }

    #[test]
    fn remote_accesses_add_cycles() {
        let cfg = MachineConfig::numa(2, 1);
        let local = EventCounts {
            instructions: 3000,
            ..Default::default()
        };
        let mut remote = local.clone();
        remote.remote_accesses = 10;
        let delta = cfg.cycles(&remote) - cfg.cycles(&local);
        assert_eq!(delta, 10.0 * f64::from(cfg.remote_penalty));
        assert!(cfg.ipc(&remote) < cfg.ipc(&local));
    }

    #[test]
    fn ipc_clamped_to_retire_width() {
        let mut cfg = MachineConfig::ivy_bridge(1);
        cfg.ideal_ipc = 10.0; // hypothetical
        let c = EventCounts {
            instructions: 1000,
            ..Default::default()
        };
        assert_eq!(cfg.ipc(&c), 4.0);
    }
}
