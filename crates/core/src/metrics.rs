//! Derived metrics: IPC, SPKI, SPT, throughput, and code-module shares.

use serde::Serialize;
use uarch_sim::{EventCounts, MachineConfig, StallEvent};

use crate::profiler::Sample;

/// Cycle share of one code module within a measurement window.
#[derive(Clone, Debug, Serialize)]
pub struct ModuleShare {
    /// Module name.
    pub name: String,
    /// Estimated cycles attributed to the module.
    pub cycles: f64,
    /// Fraction of total window cycles (0..=1).
    pub share: f64,
    /// Whether the module counts as "inside the OLTP engine".
    pub engine_side: bool,
}

/// All metrics the paper reports, for one measurement window.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// Transactions completed in the window.
    pub txns: u64,
    /// Raw counter deltas.
    pub counts: EventCounts,
    /// Estimated execution cycles (cycle model of the machine config).
    pub cycles: f64,
    /// Instructions retired per cycle.
    pub ipc: f64,
    /// Stall cycles per 1000 instructions, per miss class
    /// (`misses x penalty`, indexed by `StallEvent as usize`).
    pub spki: [f64; 6],
    /// Stall cycles per transaction, per miss class.
    pub spt: [f64; 6],
    /// Instructions per transaction.
    pub instr_per_txn: f64,
    /// Simulated throughput (transactions per simulated second).
    pub tps: f64,
    /// Per-module cycle attribution.
    pub modules: Vec<ModuleShare>,
}

impl Measurement {
    /// Derive a measurement from a profiler sample.
    pub fn from_sample(cfg: &MachineConfig, sample: &Sample, txns: u64) -> Self {
        let c = &sample.counts;
        let cycles = cfg.cycles(c);
        let stalls = cfg.stall_cycles(c);
        let kinstr = (c.instructions as f64 / 1000.0).max(f64::MIN_POSITIVE);
        let per_txn = (txns as f64).max(1.0);
        let mut spki = [0.0; 6];
        let mut spt = [0.0; 6];
        for e in StallEvent::ALL {
            spki[e as usize] = stalls[e as usize] / kinstr;
            spt[e as usize] = stalls[e as usize] / per_txn;
        }
        let modules = sample
            .modules
            .iter()
            .filter(|m| m.counts.instructions > 0 || m.counts.total_misses() > 0)
            .map(|m| {
                let mc = cfg.cycles(&m.counts);
                ModuleShare {
                    name: m.name.clone(),
                    cycles: mc,
                    share: if cycles > 0.0 { mc / cycles } else { 0.0 },
                    engine_side: m.engine_side,
                }
            })
            .collect();
        Measurement {
            txns,
            counts: c.clone(),
            cycles,
            ipc: cfg.ipc(c),
            spki,
            spt,
            instr_per_txn: c.instructions as f64 / per_txn,
            tps: if cycles > 0.0 {
                txns as f64 / (cycles / (cfg.clock_ghz * 1e9))
            } else {
                0.0
            },
            modules,
        }
    }

    /// Total stall cycles per 1000 instructions.
    pub fn spki_total(&self) -> f64 {
        self.spki.iter().sum()
    }

    /// Total stall cycles per transaction.
    pub fn spt_total(&self) -> f64 {
        self.spt.iter().sum()
    }

    /// Instruction-side share of the stall cycles (0..=1).
    pub fn instruction_stall_fraction(&self) -> f64 {
        let total = self.spki_total();
        if total <= 0.0 {
            return 0.0;
        }
        StallEvent::ALL
            .iter()
            .filter(|e| e.is_instruction())
            .map(|&e| self.spki[e as usize])
            .sum::<f64>()
            / total
    }

    /// Fraction of estimated cycles spent stalled rather than retiring.
    /// Computed from the raw counts so it is invariant under repetition
    /// averaging (where `counts` sums repetitions but `cycles` averages).
    pub fn stall_cycle_fraction(&self, cfg: &MachineConfig) -> f64 {
        let total = cfg.cycles(&self.counts);
        if total <= 0.0 {
            return 0.0;
        }
        let retire = self.counts.instructions as f64 / cfg.ideal_ipc;
        (total - retire).max(0.0) / total
    }

    /// Fraction of window cycles spent in engine-side (storage manager)
    /// modules — the paper's Figure 7 metric.
    pub fn engine_share(&self) -> f64 {
        self.modules.iter().filter(|m| m.engine_side).map(|m| m.share).sum()
    }

    /// Numeric average of several measurements (the paper averages three
    /// repetitions). Panics on an empty slice.
    pub fn average(runs: &[Measurement]) -> Measurement {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        let mut avg = runs[0].clone();
        for r in &runs[1..] {
            avg.cycles += r.cycles;
            avg.ipc += r.ipc;
            avg.instr_per_txn += r.instr_per_txn;
            avg.tps += r.tps;
            for i in 0..6 {
                avg.spki[i] += r.spki[i];
                avg.spt[i] += r.spt[i];
            }
            avg.txns += r.txns;
            avg.counts.add(&r.counts);
            for m in &r.modules {
                if let Some(mine) = avg.modules.iter_mut().find(|x| x.name == m.name) {
                    mine.cycles += m.cycles;
                    mine.share += m.share;
                } else {
                    avg.modules.push(m.clone());
                }
            }
        }
        avg.cycles /= n;
        avg.ipc /= n;
        avg.instr_per_txn /= n;
        avg.tps /= n;
        for i in 0..6 {
            avg.spki[i] /= n;
            avg.spt[i] /= n;
        }
        for m in &mut avg.modules {
            m.cycles /= n;
            m.share /= n;
        }
        avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{ModuleSample, Sample};

    fn sample_with(instr: u64, llcd: u64) -> Sample {
        let mut counts = EventCounts::default();
        counts.instructions = instr;
        counts.misses[StallEvent::LlcD as usize] = llcd;
        Sample { counts, modules: vec![] }
    }

    #[test]
    fn spki_and_spt_use_paper_arithmetic() {
        let cfg = MachineConfig::ivy_bridge(1);
        let m = Measurement::from_sample(&cfg, &sample_with(10_000, 20), 10);
        // 20 misses x 167 cycles = 3340 stall cycles over 10 k-instr.
        assert!((m.spki[StallEvent::LlcD as usize] - 334.0).abs() < 1e-9);
        assert!((m.spt[StallEvent::LlcD as usize] - 334.0).abs() < 1e-9);
        assert!((m.instr_per_txn - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn miss_free_window_has_ideal_ipc_and_no_stalls() {
        let cfg = MachineConfig::ivy_bridge(1);
        let m = Measurement::from_sample(&cfg, &sample_with(9000, 0), 3);
        assert!((m.ipc - 3.0).abs() < 1e-9);
        assert_eq!(m.spki_total(), 0.0);
        assert_eq!(m.stall_cycle_fraction(&cfg), 0.0);
    }

    #[test]
    fn engine_share_sums_engine_modules() {
        let cfg = MachineConfig::ivy_bridge(1);
        let mut inside = EventCounts::default();
        inside.instructions = 3000;
        let mut outside = EventCounts::default();
        outside.instructions = 7000;
        let mut counts = EventCounts::default();
        counts.instructions = 10_000;
        let s = Sample {
            counts,
            modules: vec![
                ModuleSample { name: "index".into(), counts: inside, engine_side: true },
                ModuleSample { name: "parser".into(), counts: outside, engine_side: false },
            ],
        };
        let m = Measurement::from_sample(&cfg, &s, 10);
        assert!((m.engine_share() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn average_of_identical_runs_is_identity() {
        let cfg = MachineConfig::ivy_bridge(1);
        let m = Measurement::from_sample(&cfg, &sample_with(10_000, 20), 10);
        let avg = Measurement::average(&[m.clone(), m.clone(), m.clone()]);
        assert!((avg.ipc - m.ipc).abs() < 1e-12);
        assert!((avg.spki_total() - m.spki_total()).abs() < 1e-9);
        assert_eq!(avg.txns, 30);
    }

    #[test]
    fn instruction_stall_fraction_splits_i_vs_d() {
        let cfg = MachineConfig::ivy_bridge(1);
        let mut counts = EventCounts::default();
        counts.instructions = 1000;
        counts.misses[StallEvent::L1i as usize] = 100; // 800 cycles
        counts.misses[StallEvent::L1d as usize] = 100; // 800 cycles
        let s = Sample { counts, modules: vec![] };
        let m = Measurement::from_sample(&cfg, &s, 1);
        assert!((m.instruction_stall_fraction() - 0.5).abs() < 1e-9);
    }
}
