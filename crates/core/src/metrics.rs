//! Derived metrics: IPC, SPKI, SPT, throughput, and code-module shares.

use obs::hist::TxnHists;
use serde::Serialize;
use uarch_sim::{EventCounts, MachineConfig, StallEvent};

use crate::profiler::Sample;

/// Cycle share of one code module within a measurement window.
#[derive(Clone, Debug, Serialize)]
pub struct ModuleShare {
    /// Module name.
    pub name: String,
    /// Estimated cycles attributed to the module.
    pub cycles: f64,
    /// Fraction of total window cycles (0..=1).
    pub share: f64,
    /// Whether the module counts as "inside the OLTP engine".
    pub engine_side: bool,
}

/// Per-phase breakdown row derived from span aggregates: the exclusive
/// (self) counter delta of one (engine, phase) pair within the window.
#[derive(Clone, Debug, Serialize)]
pub struct PhaseBreakdown {
    /// Engine that opened the spans.
    pub engine: String,
    /// Phase label (`txn`, `dispatch`, `index`, `cc`, `storage`, `log`,
    /// `commit`).
    pub phase: String,
    /// Spans closed in the window.
    pub count: u64,
    /// Exclusive counter delta (self = inclusive minus children). Summing
    /// these over all rows reproduces the traced portion of the window
    /// total exactly.
    pub counts: EventCounts,
    /// Model cycles of the exclusive delta.
    pub cycles: f64,
    /// Stall cycles per 1000 phase instructions, per miss class.
    pub spki: [f64; 6],
    /// Fraction of total window cycles (0..=1).
    pub share: f64,
}

/// All metrics the paper reports, for one measurement window.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// Transactions completed in the window.
    pub txns: u64,
    /// Raw counter deltas.
    pub counts: EventCounts,
    /// Estimated execution cycles (cycle model of the machine config).
    pub cycles: f64,
    /// Instructions retired per cycle.
    pub ipc: f64,
    /// Stall cycles per 1000 instructions, per miss class
    /// (`misses x penalty`, indexed by `StallEvent as usize`).
    pub spki: [f64; 6],
    /// Stall cycles per transaction, per miss class.
    pub spt: [f64; 6],
    /// Instructions per transaction.
    pub instr_per_txn: f64,
    /// Simulated throughput (transactions per simulated second).
    pub tps: f64,
    /// Per-module cycle attribution.
    pub modules: Vec<ModuleShare>,
    /// Per-phase span breakdown (empty when tracing was off).
    pub phases: Vec<PhaseBreakdown>,
    /// Per-transaction distributions from `Txn` spans (`None` when
    /// tracing was off or the driver opened no transaction spans).
    pub txn_hists: Option<TxnHists>,
}

impl Measurement {
    /// Derive a measurement from a profiler sample.
    pub fn from_sample(cfg: &MachineConfig, sample: &Sample, txns: u64) -> Self {
        let c = &sample.counts;
        let cycles = cfg.cycles(c);
        let stalls = cfg.stall_cycles(c);
        let kinstr = (c.instructions as f64 / 1000.0).max(f64::MIN_POSITIVE);
        let per_txn = (txns as f64).max(1.0);
        let mut spki = [0.0; 6];
        let mut spt = [0.0; 6];
        for e in StallEvent::ALL {
            spki[e as usize] = stalls[e as usize] / kinstr;
            spt[e as usize] = stalls[e as usize] / per_txn;
        }
        let modules = sample
            .modules
            .iter()
            .filter(|m| m.counts.instructions > 0 || m.counts.total_misses() > 0)
            .map(|m| {
                let mc = cfg.cycles(&m.counts);
                ModuleShare {
                    name: m.name.clone(),
                    cycles: mc,
                    share: if cycles > 0.0 { mc / cycles } else { 0.0 },
                    engine_side: m.engine_side,
                }
            })
            .collect();
        let mut phases = Vec::new();
        let mut txn_hists = None;
        if let Some(spans) = &sample.spans {
            for ((engine, phase), agg) in &spans.phases {
                let pc = &agg.self_counts;
                let pcycles = cfg.cycles(pc);
                let pstalls = cfg.stall_cycles(pc);
                let pkinstr = (pc.instructions as f64 / 1000.0).max(f64::MIN_POSITIVE);
                let mut pspki = [0.0; 6];
                for e in StallEvent::ALL {
                    pspki[e as usize] = pstalls[e as usize] / pkinstr;
                }
                phases.push(PhaseBreakdown {
                    engine: engine.to_string(),
                    phase: phase.label().to_string(),
                    count: agg.count,
                    counts: pc.clone(),
                    cycles: pcycles,
                    spki: pspki,
                    share: if cycles > 0.0 { pcycles / cycles } else { 0.0 },
                });
            }
            if spans.hists.instructions.count() > 0 {
                txn_hists = Some(spans.hists.clone());
            }
        }
        Measurement {
            txns,
            counts: c.clone(),
            cycles,
            ipc: cfg.ipc(c),
            spki,
            spt,
            instr_per_txn: c.instructions as f64 / per_txn,
            tps: if cycles > 0.0 {
                txns as f64 / (cycles / (cfg.clock_ghz * 1e9))
            } else {
                0.0
            },
            modules,
            phases,
            txn_hists,
        }
    }

    /// Window counter activity not covered by any span's exclusive delta
    /// (computed by saturating subtraction; zero when the driver wrapped
    /// every transaction in a `Txn` span).
    pub fn phase_unattributed(&self) -> EventCounts {
        let mut attributed = EventCounts::default();
        for p in &self.phases {
            attributed.add(&p.counts);
        }
        let t = &self.counts;
        let mut misses = [0u64; 6];
        for (i, m) in misses.iter_mut().enumerate() {
            *m = t.misses[i].saturating_sub(attributed.misses[i]);
        }
        EventCounts {
            instructions: t.instructions.saturating_sub(attributed.instructions),
            code_fetches: t.code_fetches.saturating_sub(attributed.code_fetches),
            loads: t.loads.saturating_sub(attributed.loads),
            stores: t.stores.saturating_sub(attributed.stores),
            misses,
            mispredicts: t.mispredicts.saturating_sub(attributed.mispredicts),
            store_misses: t.store_misses.saturating_sub(attributed.store_misses),
            invalidations: t.invalidations.saturating_sub(attributed.invalidations),
            remote_accesses: t.remote_accesses.saturating_sub(attributed.remote_accesses),
        }
    }

    /// Total stall cycles per 1000 instructions.
    pub fn spki_total(&self) -> f64 {
        self.spki.iter().sum()
    }

    /// Total stall cycles per transaction.
    pub fn spt_total(&self) -> f64 {
        self.spt.iter().sum()
    }

    /// Instruction-side share of the stall cycles (0..=1).
    pub fn instruction_stall_fraction(&self) -> f64 {
        let total = self.spki_total();
        if total <= 0.0 {
            return 0.0;
        }
        StallEvent::ALL
            .iter()
            .filter(|e| e.is_instruction())
            .map(|&e| self.spki[e as usize])
            .sum::<f64>()
            / total
    }

    /// Fraction of estimated cycles spent stalled rather than retiring.
    /// Computed from the raw counts so it is invariant under repetition
    /// averaging (where `counts` sums repetitions but `cycles` averages).
    pub fn stall_cycle_fraction(&self, cfg: &MachineConfig) -> f64 {
        let total = cfg.cycles(&self.counts);
        if total <= 0.0 {
            return 0.0;
        }
        let retire = self.counts.instructions as f64 / cfg.ideal_ipc;
        (total - retire).max(0.0) / total
    }

    /// Fraction of window cycles spent in engine-side (storage manager)
    /// modules — the paper's Figure 7 metric.
    pub fn engine_share(&self) -> f64 {
        self.modules
            .iter()
            .filter(|m| m.engine_side)
            .map(|m| m.share)
            .sum()
    }

    /// Numeric average of several measurements (the paper averages three
    /// repetitions). Panics on an empty slice.
    pub fn average(runs: &[Measurement]) -> Measurement {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        let mut avg = runs[0].clone();
        for r in &runs[1..] {
            avg.cycles += r.cycles;
            avg.ipc += r.ipc;
            avg.instr_per_txn += r.instr_per_txn;
            avg.tps += r.tps;
            for i in 0..6 {
                avg.spki[i] += r.spki[i];
                avg.spt[i] += r.spt[i];
            }
            avg.txns += r.txns;
            avg.counts.add(&r.counts);
            for m in &r.modules {
                if let Some(mine) = avg.modules.iter_mut().find(|x| x.name == m.name) {
                    mine.cycles += m.cycles;
                    mine.share += m.share;
                } else {
                    avg.modules.push(m.clone());
                }
            }
            for p in &r.phases {
                if let Some(mine) = avg
                    .phases
                    .iter_mut()
                    .find(|x| x.engine == p.engine && x.phase == p.phase)
                {
                    mine.count += p.count;
                    mine.counts.add(&p.counts);
                    mine.cycles += p.cycles;
                    mine.share += p.share;
                    for i in 0..6 {
                        mine.spki[i] += p.spki[i];
                    }
                } else {
                    avg.phases.push(p.clone());
                }
            }
            match (&mut avg.txn_hists, &r.txn_hists) {
                (Some(mine), Some(theirs)) => mine.merge(theirs),
                (mine @ None, Some(theirs)) => *mine = Some(theirs.clone()),
                _ => {}
            }
        }
        avg.cycles /= n;
        avg.ipc /= n;
        avg.instr_per_txn /= n;
        avg.tps /= n;
        for i in 0..6 {
            avg.spki[i] /= n;
            avg.spt[i] /= n;
        }
        for m in &mut avg.modules {
            m.cycles /= n;
            m.share /= n;
        }
        for p in &mut avg.phases {
            p.cycles /= n;
            p.share /= n;
            for i in 0..6 {
                p.spki[i] /= n;
            }
        }
        avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{ModuleSample, Sample};

    fn sample_with(instr: u64, llcd: u64) -> Sample {
        let mut counts = EventCounts {
            instructions: instr,
            ..Default::default()
        };
        counts.misses[StallEvent::LlcD as usize] = llcd;
        Sample {
            counts,
            modules: vec![],
            spans: None,
        }
    }

    #[test]
    fn spki_and_spt_use_paper_arithmetic() {
        let cfg = MachineConfig::ivy_bridge(1);
        let m = Measurement::from_sample(&cfg, &sample_with(10_000, 20), 10);
        // 20 misses x 167 cycles = 3340 stall cycles over 10 k-instr.
        assert!((m.spki[StallEvent::LlcD as usize] - 334.0).abs() < 1e-9);
        assert!((m.spt[StallEvent::LlcD as usize] - 334.0).abs() < 1e-9);
        assert!((m.instr_per_txn - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn miss_free_window_has_ideal_ipc_and_no_stalls() {
        let cfg = MachineConfig::ivy_bridge(1);
        let m = Measurement::from_sample(&cfg, &sample_with(9000, 0), 3);
        assert!((m.ipc - 3.0).abs() < 1e-9);
        assert_eq!(m.spki_total(), 0.0);
        assert_eq!(m.stall_cycle_fraction(&cfg), 0.0);
    }

    #[test]
    fn engine_share_sums_engine_modules() {
        let cfg = MachineConfig::ivy_bridge(1);
        let inside = EventCounts {
            instructions: 3000,
            ..Default::default()
        };
        let outside = EventCounts {
            instructions: 7000,
            ..Default::default()
        };
        let counts = EventCounts {
            instructions: 10_000,
            ..Default::default()
        };
        let s = Sample {
            counts,
            modules: vec![
                ModuleSample {
                    name: "index".into(),
                    counts: inside,
                    engine_side: true,
                },
                ModuleSample {
                    name: "parser".into(),
                    counts: outside,
                    engine_side: false,
                },
            ],
            spans: None,
        };
        let m = Measurement::from_sample(&cfg, &s, 10);
        assert!((m.engine_share() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn average_of_identical_runs_is_identity() {
        let cfg = MachineConfig::ivy_bridge(1);
        let m = Measurement::from_sample(&cfg, &sample_with(10_000, 20), 10);
        let avg = Measurement::average(&[m.clone(), m.clone(), m.clone()]);
        assert!((avg.ipc - m.ipc).abs() < 1e-12);
        assert!((avg.spki_total() - m.spki_total()).abs() < 1e-9);
        assert_eq!(avg.txns, 30);
    }

    #[test]
    fn instruction_stall_fraction_splits_i_vs_d() {
        let cfg = MachineConfig::ivy_bridge(1);
        let mut counts = EventCounts {
            instructions: 1000,
            ..Default::default()
        };
        counts.misses[StallEvent::L1i as usize] = 100; // 800 cycles
        counts.misses[StallEvent::L1d as usize] = 100; // 800 cycles
        let s = Sample {
            counts,
            modules: vec![],
            spans: None,
        };
        let m = Measurement::from_sample(&cfg, &s, 1);
        assert!((m.instruction_stall_fraction() - 0.5).abs() < 1e-9);
    }
}
