//! Counter-window profiler — the VTune-attach analogue.

use uarch_sim::{EventCounts, Sim};

/// Per-module sample entry: name, window delta, and whether the module is
/// part of the OLTP engine (storage manager) for Figure 7 attribution.
#[derive(Clone, Debug)]
pub struct ModuleSample {
    /// Module name as registered by the engine.
    pub name: String,
    /// Counter delta within the window.
    pub counts: EventCounts,
    /// True if the module was registered `engine_side`.
    pub engine_side: bool,
}

/// A counter-window delta for one core.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Aggregate delta.
    pub counts: EventCounts,
    /// Per-module deltas.
    pub modules: Vec<ModuleSample>,
}

impl Sample {
    /// Merge another sample (e.g. a second worker thread) into this one.
    pub fn merge(&mut self, other: &Sample) {
        self.counts.add(&other.counts);
        for m in &other.modules {
            if let Some(mine) = self.modules.iter_mut().find(|x| x.name == m.name) {
                mine.counts.add(&m.counts);
            } else {
                self.modules.push(m.clone());
            }
        }
    }
}

/// Attaches to one simulated core and produces [`Sample`] deltas, like
/// VTune attaching to the database server process and filtering for a
/// specific worker thread.
pub struct Profiler {
    sim: Sim,
    core: usize,
    start: EventCounts,
    start_modules: Vec<EventCounts>,
}

impl Profiler {
    /// Start a counter window on `core` now.
    pub fn attach(sim: &Sim, core: usize) -> Self {
        Profiler {
            sim: sim.clone(),
            core,
            start: sim.counters(core),
            start_modules: sim.module_counters(core),
        }
    }

    /// Restart the window at the current counter values (used to discard a
    /// warm-up phase).
    pub fn reset(&mut self) {
        self.start = self.sim.counters(self.core);
        self.start_modules = self.sim.module_counters(self.core);
    }

    /// Delta since attach/reset.
    pub fn sample(&self) -> Sample {
        let now = self.sim.counters(self.core);
        let now_modules = self.sim.module_counters(self.core);
        let specs = self.sim.module_specs();
        let modules = now_modules
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let earlier =
                    self.start_modules.get(i).cloned().unwrap_or_default();
                ModuleSample {
                    name: specs[i].name.clone(),
                    counts: c.delta(&earlier),
                    engine_side: specs[i].engine_side,
                }
            })
            .collect();
        Sample { counts: now.delta(&self.start), modules }
    }

    /// The core this profiler watches.
    pub fn core(&self) -> usize {
        self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_sim::{MachineConfig, ModuleSpec};

    #[test]
    fn window_sees_only_activity_after_attach() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let m = sim.register_module(ModuleSpec::new("m", 4096));
        sim.mem(0).with_module(m).exec(5000);
        let p = Profiler::attach(&sim, 0);
        sim.mem(0).with_module(m).exec(1234);
        let s = p.sample();
        assert_eq!(s.counts.instructions, 1234);
    }

    #[test]
    fn reset_discards_warmup() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let m = sim.register_module(ModuleSpec::new("m", 4096));
        let mut p = Profiler::attach(&sim, 0);
        sim.mem(0).with_module(m).exec(9999); // warmup
        p.reset();
        sim.mem(0).with_module(m).exec(100);
        assert_eq!(p.sample().counts.instructions, 100);
    }

    #[test]
    fn module_samples_partition_the_total() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let a = sim.register_module(ModuleSpec::new("a", 4096).engine_side(true));
        let b = sim.register_module(ModuleSpec::new("b", 4096));
        let p = Profiler::attach(&sim, 0);
        sim.mem(0).with_module(a).exec(300);
        sim.mem(0).with_module(b).exec(700);
        let s = p.sample();
        let sum: u64 = s.modules.iter().map(|m| m.counts.instructions).sum();
        assert_eq!(sum, s.counts.instructions);
        let a_entry = s.modules.iter().find(|m| m.name == "a").unwrap();
        assert!(a_entry.engine_side);
        assert_eq!(a_entry.counts.instructions, 300);
    }

    #[test]
    fn merge_accumulates_by_name() {
        let sim = Sim::new(MachineConfig::ivy_bridge(2));
        let a = sim.register_module(ModuleSpec::new("a", 4096));
        let p0 = Profiler::attach(&sim, 0);
        let p1 = Profiler::attach(&sim, 1);
        sim.mem(0).with_module(a).exec(10);
        sim.mem(1).with_module(a).exec(20);
        let mut s = p0.sample();
        s.merge(&p1.sample());
        assert_eq!(s.counts.instructions, 30);
        let a_entry = s.modules.iter().find(|m| m.name == "a").unwrap();
        assert_eq!(a_entry.counts.instructions, 30);
    }
}
