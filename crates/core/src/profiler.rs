//! Counter-window profiler — the VTune-attach analogue.

use obs::AggSnapshot;
use uarch_sim::{EventCounts, Sim};

/// Per-module sample entry: name, window delta, and whether the module is
/// part of the OLTP engine (storage manager) for Figure 7 attribution.
#[derive(Clone, Debug)]
pub struct ModuleSample {
    /// Module name as registered by the engine.
    pub name: String,
    /// Counter delta within the window.
    pub counts: EventCounts,
    /// True if the module was registered `engine_side`.
    pub engine_side: bool,
}

/// A counter-window delta for one core.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Aggregate delta.
    pub counts: EventCounts,
    /// Per-module deltas.
    pub modules: Vec<ModuleSample>,
    /// Per-(engine, phase) span aggregates and per-transaction histograms
    /// for this core's window. `None` when no tracer was installed.
    pub spans: Option<AggSnapshot>,
}

impl Sample {
    /// Merge another sample (e.g. a second worker thread) into this one.
    pub fn merge(&mut self, other: &Sample) {
        self.counts.add(&other.counts);
        for m in &other.modules {
            if let Some(mine) = self.modules.iter_mut().find(|x| x.name == m.name) {
                mine.counts.add(&m.counts);
            } else {
                self.modules.push(m.clone());
            }
        }
        // Span aggregates are per-core, so cross-core merge is a sum.
        match (&mut self.spans, &other.spans) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs.clone()),
            _ => {}
        }
    }
}

/// Attaches to one simulated core and produces [`Sample`] deltas, like
/// VTune attaching to the database server process and filtering for a
/// specific worker thread.
pub struct Profiler {
    sim: Sim,
    core: usize,
    start: EventCounts,
    start_modules: Vec<EventCounts>,
    /// Span-aggregate baseline for this core (`None` when no tracer was
    /// installed at attach/reset time).
    start_spans: Option<AggSnapshot>,
}

impl Profiler {
    /// Start a counter window on `core` now.
    pub fn attach(sim: &Sim, core: usize) -> Self {
        Profiler {
            sim: sim.clone(),
            core,
            start: sim.counters(core),
            start_modules: sim.module_counters(core),
            start_spans: obs::snapshot_installed_core(core),
        }
    }

    /// Restart the window at the current counter values (used to discard a
    /// warm-up phase).
    pub fn reset(&mut self) {
        self.start = self.sim.counters(self.core);
        self.start_modules = self.sim.module_counters(self.core);
        self.start_spans = obs::snapshot_installed_core(self.core);
    }

    /// Delta since attach/reset.
    pub fn sample(&self) -> Sample {
        let now = self.sim.counters(self.core);
        let now_modules = self.sim.module_counters(self.core);
        let specs = self.sim.module_specs();
        // The module list only grows, so the window can contain modules
        // that did not exist at attach/reset time.
        debug_assert!(
            self.start_modules.len() <= now_modules.len(),
            "module list shrank inside a profiler window"
        );
        let modules = now_modules
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // A module registered after attach() has no baseline
                // entry; its counters started from zero inside the
                // window, so the full cumulative value IS the window
                // delta. Handle the two cases explicitly.
                let counts = match self.start_modules.get(i) {
                    Some(earlier) => c.delta(earlier),
                    None => c.clone(),
                };
                ModuleSample {
                    name: specs[i].name.clone(),
                    counts,
                    engine_side: specs[i].engine_side,
                }
            })
            .collect();
        // Same convention for spans: a tracer installed after attach()
        // deltas against an empty baseline, i.e. reports in full.
        let spans = obs::snapshot_installed_core(self.core)
            .map(|now| now.delta(self.start_spans.as_ref().unwrap_or(&AggSnapshot::default())));
        Sample {
            counts: now.delta(&self.start),
            modules,
            spans,
        }
    }

    /// The core this profiler watches.
    pub fn core(&self) -> usize {
        self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_sim::{MachineConfig, ModuleSpec};

    #[test]
    fn window_sees_only_activity_after_attach() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let m = sim.register_module(ModuleSpec::new("m", 4096));
        sim.mem(0).with_module(m).exec(5000);
        let p = Profiler::attach(&sim, 0);
        sim.mem(0).with_module(m).exec(1234);
        let s = p.sample();
        assert_eq!(s.counts.instructions, 1234);
    }

    #[test]
    fn reset_discards_warmup() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let m = sim.register_module(ModuleSpec::new("m", 4096));
        let mut p = Profiler::attach(&sim, 0);
        sim.mem(0).with_module(m).exec(9999); // warmup
        p.reset();
        sim.mem(0).with_module(m).exec(100);
        assert_eq!(p.sample().counts.instructions, 100);
    }

    #[test]
    fn module_samples_partition_the_total() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let a = sim.register_module(ModuleSpec::new("a", 4096).engine_side(true));
        let b = sim.register_module(ModuleSpec::new("b", 4096));
        let p = Profiler::attach(&sim, 0);
        sim.mem(0).with_module(a).exec(300);
        sim.mem(0).with_module(b).exec(700);
        let s = p.sample();
        let sum: u64 = s.modules.iter().map(|m| m.counts.instructions).sum();
        assert_eq!(sum, s.counts.instructions);
        let a_entry = s.modules.iter().find(|m| m.name == "a").unwrap();
        assert!(a_entry.engine_side);
        assert_eq!(a_entry.counts.instructions, 300);
    }

    #[test]
    fn late_registered_modules_report_full_deltas() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let a = sim.register_module(ModuleSpec::new("a", 4096));
        let p = Profiler::attach(&sim, 0);
        sim.mem(0).with_module(a).exec(100);
        // Registered inside the window: no baseline entry exists, so the
        // module's full cumulative counts are the window delta.
        let b = sim.register_module(ModuleSpec::new("b", 4096));
        sim.mem(0).with_module(b).exec(250);
        let s = p.sample();
        let b_entry = s.modules.iter().find(|m| m.name == "b").unwrap();
        assert_eq!(b_entry.counts.instructions, 250);
        // The partition invariant still holds with the late module.
        let sum: u64 = s.modules.iter().map(|m| m.counts.instructions).sum();
        assert_eq!(sum, s.counts.instructions);
    }

    #[test]
    fn sample_windows_span_aggregates() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let m = sim.register_module(ModuleSpec::new("m", 4096));
        let tracer = obs::Tracer::new(&sim);
        obs::install(tracer);
        {
            let _t = obs::span("X", obs::Phase::Txn, 0);
            sim.mem(0).with_module(m).exec(500); // pre-window span
        }
        let p = Profiler::attach(&sim, 0);
        {
            let _t = obs::span("X", obs::Phase::Txn, 0);
            sim.mem(0).with_module(m).exec(80);
        }
        let s = p.sample();
        obs::uninstall();
        let spans = s.spans.expect("tracer installed");
        let txn = &spans.phases[&("X", obs::Phase::Txn)];
        assert_eq!(txn.count, 1, "pre-window span must be excluded");
        assert_eq!(txn.incl_counts.instructions, 80);
        // Span self-deltas partition the window total exactly.
        assert_eq!(spans.self_total().instructions, s.counts.instructions);
        assert_eq!(spans.hists.instructions.count(), 1);
    }

    #[test]
    fn sample_without_tracer_has_no_spans() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let p = Profiler::attach(&sim, 0);
        sim.mem(0).exec(10);
        assert!(p.sample().spans.is_none());
    }

    #[test]
    fn merge_accumulates_by_name() {
        let sim = Sim::new(MachineConfig::ivy_bridge(2));
        let a = sim.register_module(ModuleSpec::new("a", 4096));
        let p0 = Profiler::attach(&sim, 0);
        let p1 = Profiler::attach(&sim, 1);
        sim.mem(0).with_module(a).exec(10);
        sim.mem(1).with_module(a).exec(20);
        let mut s = p0.sample();
        s.merge(&p1.sample());
        assert_eq!(s.counts.instructions, 30);
        let a_entry = s.modules.iter().find(|m| m.name == "a").unwrap();
        assert_eq!(a_entry.counts.instructions, 30);
    }
}
