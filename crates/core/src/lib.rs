//! # microarch — the paper's measurement methodology as a library
//!
//! Sirin et al. (SIGMOD'16) characterize OLTP systems with four observables:
//! IPC, stall cycles per 1000 instructions (SPKI), stall cycles per
//! transaction (SPT) — each broken into the six miss classes L1I / L2I /
//! LLC-I / L1D / L2D / LLC-D — and the share of execution time spent inside
//! the OLTP engine (code-module attribution).
//!
//! This crate implements that methodology against the [`uarch_sim`]
//! simulator, mirroring the paper's VTune workflow:
//!
//! * [`profiler::Profiler`] — "attach" to a running engine's core and take
//!   counter-window deltas (the analogue of sampling the middle 30 s of a
//!   60 s run);
//! * [`metrics::Measurement`] — derived metrics for one window;
//! * [`experiment`] — warm-up / measure windows, repetition averaging
//!   (the paper repeats every experiment three times), and multi-worker
//!   aggregation (the paper averages per-worker-thread counters);
//! * [`report`] — paper-style figure tables (grouped bars rendered as
//!   aligned text / markdown / CSV).

pub mod experiment;
pub mod metrics;
pub mod profiler;
pub mod report;

pub use experiment::{measure, measure_multi, measure_workers, Pacing, WindowSpec};
pub use metrics::{Measurement, ModuleShare};
pub use profiler::{Profiler, Sample};
pub use report::{markdown_table, ScalarFigure, StallFigure};
