//! Paper-style figure tables.
//!
//! The paper's figures are grouped bar charts: systems on the outer axis,
//! a swept parameter (database size, rows per transaction, ...) on the
//! inner axis, and either a scalar (IPC) or a six-component stall
//! breakdown per bar. This module renders the same data as aligned text,
//! markdown, and CSV so `EXPERIMENTS.md` can be regenerated mechanically.

use std::fmt::Write as _;

use serde::Serialize;
use uarch_sim::StallEvent;

/// A figure whose bars are single scalars (e.g. IPC, engine-time share).
#[derive(Clone, Debug, Serialize)]
pub struct ScalarFigure {
    /// Figure id, e.g. "fig1-ro".
    pub id: String,
    /// Caption.
    pub title: String,
    /// Metric name for the value column, e.g. "IPC".
    pub metric: String,
    /// Outer axis labels (systems).
    pub groups: Vec<String>,
    /// Inner axis labels (sweep points); may be a single empty label.
    pub xlabels: Vec<String>,
    /// `values[group][x]`.
    pub values: Vec<Vec<f64>>,
}

/// A figure whose bars carry the six-class stall breakdown.
#[derive(Clone, Debug, Serialize)]
pub struct StallFigure {
    /// Figure id, e.g. "fig2-ro".
    pub id: String,
    /// Caption.
    pub title: String,
    /// Unit of the values, e.g. "stall cycles / k-instr".
    pub unit: String,
    /// Outer axis labels (systems).
    pub groups: Vec<String>,
    /// Inner axis labels (sweep points).
    pub xlabels: Vec<String>,
    /// `cells[group][x][event]`.
    pub cells: Vec<Vec<[f64; 6]>>,
}

impl ScalarFigure {
    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut rows = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            for (x, xl) in self.xlabels.iter().enumerate() {
                rows.push(vec![
                    group.clone(),
                    xl.clone(),
                    format!("{:.3}", self.values[g][x]),
                ]);
            }
        }
        let mut out = format!("## {} — {}\n", self.id, self.title);
        out.push_str(&text_table(&["system", "x", &self.metric], &rows));
        out
    }

    /// Render as a markdown table.
    pub fn render_markdown(&self) -> String {
        let mut rows = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            for (x, xl) in self.xlabels.iter().enumerate() {
                rows.push(vec![
                    group.clone(),
                    xl.clone(),
                    format!("{:.3}", self.values[g][x]),
                ]);
            }
        }
        markdown_table(&["system", "x", &self.metric], &rows)
    }

    /// Render as CSV (header + rows).
    pub fn render_csv(&self) -> String {
        let mut out = format!("figure,system,x,{}\n", self.metric);
        for (g, group) in self.groups.iter().enumerate() {
            for (x, xl) in self.xlabels.iter().enumerate() {
                let _ = writeln!(out, "{},{},{},{:.6}", self.id, group, xl, self.values[g][x]);
            }
        }
        out
    }
}

impl StallFigure {
    /// Render as an aligned text table with one column per miss class plus
    /// instruction/data/total summaries.
    pub fn render_text(&self) -> String {
        let mut out = format!("## {} — {} [{}]\n", self.id, self.title, self.unit);
        out.push_str(&text_table(&self.headers(), &self.rows()));
        out
    }

    /// Render as a markdown table.
    pub fn render_markdown(&self) -> String {
        markdown_table(&self.headers(), &self.rows())
    }

    /// Render as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("figure,system,x,l1i,l2i,llc_i,l1d,l2d,llc_d,total\n");
        for (g, group) in self.groups.iter().enumerate() {
            for (x, xl) in self.xlabels.iter().enumerate() {
                let c = &self.cells[g][x];
                let total: f64 = c.iter().sum();
                let _ = writeln!(
                    out,
                    "{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
                    self.id, group, xl, c[0], c[1], c[2], c[3], c[4], c[5], total
                );
            }
        }
        out
    }

    fn headers(&self) -> Vec<String> {
        let mut h = vec!["system".to_string(), "x".to_string()];
        h.extend(StallEvent::ALL.iter().map(|e| e.label().to_string()));
        h.push("I-total".into());
        h.push("D-total".into());
        h.push("total".into());
        h
    }

    fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            for (x, xl) in self.xlabels.iter().enumerate() {
                let c = &self.cells[g][x];
                let i_total: f64 = c[..3].iter().sum();
                let d_total: f64 = c[3..].iter().sum();
                let mut row = vec![group.clone(), xl.clone()];
                row.extend(c.iter().map(|v| format!("{v:.1}")));
                row.push(format!("{i_total:.1}"));
                row.push(format!("{d_total:.1}"));
                row.push(format!("{:.1}", i_total + d_total));
                rows.push(row);
            }
        }
        rows
    }
}

fn headers_owned(headers: &[impl AsRef<str>]) -> Vec<String> {
    headers.iter().map(|h| h.as_ref().to_string()).collect()
}

/// Aligned plain-text table.
pub fn text_table(headers: &[impl AsRef<str>], rows: &[Vec<String>]) -> String {
    let headers = headers_owned(headers);
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", c, w = widths[i]);
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// GitHub-flavoured markdown table.
pub fn markdown_table(headers: &[impl AsRef<str>], rows: &[Vec<String>]) -> String {
    let headers = headers_owned(headers);
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    out.push_str(&"---|".repeat(headers.len()));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar() -> ScalarFigure {
        ScalarFigure {
            id: "figX".into(),
            title: "test".into(),
            metric: "IPC".into(),
            groups: vec!["A".into(), "B".into()],
            xlabels: vec!["1".into(), "2".into()],
            values: vec![vec![0.5, 0.6], vec![1.5, 1.6]],
        }
    }

    #[test]
    fn scalar_csv_has_all_cells() {
        let csv = scalar().render_csv();
        assert_eq!(csv.lines().count(), 5); // header + 4 cells
        assert!(csv.contains("figX,B,2,1.600000"));
    }

    #[test]
    fn scalar_markdown_is_well_formed() {
        let md = scalar().render_markdown();
        assert!(md.starts_with("| system | x | IPC |"));
        assert_eq!(md.lines().count(), 6);
    }

    #[test]
    fn stall_rows_include_totals() {
        let f = StallFigure {
            id: "figY".into(),
            title: "stalls".into(),
            unit: "spki".into(),
            groups: vec!["A".into()],
            xlabels: vec!["x".into()],
            cells: vec![vec![[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]],
        };
        let text = f.render_text();
        assert!(text.contains("6.0")); // I-total
        assert!(text.contains("15.0")); // D-total
        assert!(text.contains("21.0")); // grand total
        let csv = f.render_csv();
        assert!(csv.contains("21.000"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let _ = text_table(&["a", "b"], &[vec!["only-one".to_string()]]);
    }
}
