//! Experiment methodology: warm-up / measurement windows and repetition
//! averaging, mirroring §3 of the paper (60 s warm-up, middle-30 s
//! sampling, three repetitions, per-worker filtering) in deterministic
//! transaction-count terms.

use uarch_sim::Sim;

use crate::metrics::Measurement;
use crate::profiler::Profiler;

/// Window specification for one experiment point.
#[derive(Clone, Copy, Debug)]
pub struct WindowSpec {
    /// Transactions executed (and discarded) to warm caches and structures.
    pub warmup: u64,
    /// Transactions measured per repetition.
    pub measured: u64,
    /// Number of measured repetitions averaged (the paper uses 3).
    pub reps: u32,
}

impl Default for WindowSpec {
    fn default() -> Self {
        WindowSpec {
            warmup: 2_000,
            measured: 5_000,
            reps: 3,
        }
    }
}

impl WindowSpec {
    /// A spec scaled by an intensity factor (used by the figure harness to
    /// trade accuracy for wall-clock time via `IMOLTP_SCALE`).
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        let s = |v: u64| ((v as f64 * factor).round() as u64).max(50);
        WindowSpec {
            warmup: s(self.warmup),
            measured: s(self.measured),
            reps: self.reps,
        }
    }
}

/// Run a single-worker experiment: `step(i)` must execute exactly one
/// transaction on the engine under test, which must emit all its simulated
/// activity on `core`.
pub fn measure<F: FnMut(u64)>(
    sim: &Sim,
    core: usize,
    spec: WindowSpec,
    mut step: F,
) -> Measurement {
    let cfg = sim.config();
    let mut txn_no = 0u64;
    for _ in 0..spec.warmup {
        step(txn_no);
        txn_no += 1;
    }
    let mut runs = Vec::with_capacity(spec.reps as usize);
    for _ in 0..spec.reps.max(1) {
        let profiler = Profiler::attach(sim, core);
        for _ in 0..spec.measured {
            step(txn_no);
            txn_no += 1;
        }
        runs.push(Measurement::from_sample(
            &cfg,
            &profiler.sample(),
            spec.measured,
        ));
    }
    Measurement::average(&runs)
}

/// Run a multi-worker experiment: `step(i, w)` executes one transaction on
/// worker `w` (whose activity lands on core `cores[w]`). Workers are
/// interleaved round-robin at transaction granularity; the result averages
/// per-worker measurements, as the paper does ("we filter hardware counter
/// results for each worker thread separately and report their average").
pub fn measure_multi<F: FnMut(u64, usize)>(
    sim: &Sim,
    cores: &[usize],
    spec: WindowSpec,
    mut step: F,
) -> Measurement {
    assert!(!cores.is_empty());
    let cfg = sim.config();
    let mut txn_no = 0u64;
    for _ in 0..spec.warmup {
        for w in 0..cores.len() {
            step(txn_no, w);
            txn_no += 1;
        }
    }
    let mut runs = Vec::new();
    for _ in 0..spec.reps.max(1) {
        let profilers: Vec<Profiler> = cores.iter().map(|&c| Profiler::attach(sim, c)).collect();
        for _ in 0..spec.measured {
            for w in 0..cores.len() {
                step(txn_no, w);
                txn_no += 1;
            }
        }
        let per_worker: Vec<Measurement> = profilers
            .iter()
            .map(|p| Measurement::from_sample(&cfg, &p.sample(), spec.measured))
            .collect();
        runs.push(Measurement::average(&per_worker));
    }
    Measurement::average(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_sim::{MachineConfig, ModuleSpec};

    #[test]
    fn measure_counts_only_measured_window() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let m = sim.register_module(ModuleSpec::new("txn", 4096));
        let mem = sim.mem(0).with_module(m);
        let spec = WindowSpec {
            warmup: 10,
            measured: 100,
            reps: 2,
        };
        let result = measure(&sim, 0, spec, |_| mem.exec(1000));
        // Each rep measures 100 txns x 1000 instructions.
        assert_eq!(result.counts.instructions, 2 * 100 * 1000);
        assert_eq!(result.txns, 200);
        assert!((result.instr_per_txn - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_lowers_measured_misses() {
        // With warmup, the compulsory misses of a small loop are excluded.
        let cold = {
            let sim = Sim::new(MachineConfig::ivy_bridge(1));
            let m = sim.register_module(ModuleSpec::new("txn", 16 << 10).reuse(1.0));
            let mem = sim.mem(0).with_module(m);
            let spec = WindowSpec {
                warmup: 0,
                measured: 1,
                reps: 1,
            };
            measure(&sim, 0, spec, |_| mem.exec(4096))
                .counts
                .total_misses()
        };
        let warm = {
            let sim = Sim::new(MachineConfig::ivy_bridge(1));
            let m = sim.register_module(ModuleSpec::new("txn", 16 << 10).reuse(1.0));
            let mem = sim.mem(0).with_module(m);
            let spec = WindowSpec {
                warmup: 50,
                measured: 1,
                reps: 1,
            };
            measure(&sim, 0, spec, |_| mem.exec(4096))
                .counts
                .total_misses()
        };
        assert!(warm < cold, "warm={warm} cold={cold}");
    }

    #[test]
    fn measure_multi_averages_workers() {
        let sim = Sim::new(MachineConfig::ivy_bridge(2));
        let m = sim.register_module(ModuleSpec::new("txn", 4096));
        let spec = WindowSpec {
            warmup: 0,
            measured: 10,
            reps: 1,
        };
        let result = measure_multi(&sim, &[0, 1], spec, |_, w| {
            sim.mem(w)
                .with_module(m)
                .exec(if w == 0 { 1000 } else { 3000 });
        });
        // Average of 1000 and 3000 instructions per txn.
        assert!((result.instr_per_txn - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_window_clamps_to_minimum() {
        let spec = WindowSpec {
            warmup: 100,
            measured: 100,
            reps: 3,
        }
        .scaled(0.001);
        assert_eq!(spec.warmup, 50);
        assert_eq!(spec.measured, 50);
    }
}
