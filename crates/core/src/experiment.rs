//! Experiment methodology: warm-up / measurement windows and repetition
//! averaging, mirroring §3 of the paper (60 s warm-up, middle-30 s
//! sampling, three repetitions, per-worker filtering) in deterministic
//! transaction-count terms.
//!
//! Multi-worker experiments run each worker on its own OS thread against
//! the shared simulated machine. Two pacing disciplines are offered:
//!
//! * [`Pacing::Lockstep`] — a turn gate hands out global transaction
//!   numbers round-robin, so the interleaving (and therefore every
//!   counter) is bit-reproducible run over run. This is how the figure
//!   harness runs; throughput scaling is read off the *simulated* cycle
//!   counters, which the gate does not distort.
//! * [`Pacing::Free`] — workers run unsynchronized between the window
//!   barriers; the interleaving is real and nondeterministic (used by the
//!   concurrency stress tests, not by the figures).

use std::sync::{Condvar, Mutex};

use uarch_sim::Sim;

use crate::metrics::Measurement;
use crate::profiler::{Profiler, Sample};

/// Window specification for one experiment point.
#[derive(Clone, Copy, Debug)]
pub struct WindowSpec {
    /// Transactions executed (and discarded) to warm caches and structures.
    pub warmup: u64,
    /// Transactions measured per repetition.
    pub measured: u64,
    /// Number of measured repetitions averaged (the paper uses 3).
    pub reps: u32,
}

impl Default for WindowSpec {
    fn default() -> Self {
        WindowSpec {
            warmup: 2_000,
            measured: 5_000,
            reps: 3,
        }
    }
}

impl WindowSpec {
    /// A spec scaled by an intensity factor (used by the figure harness to
    /// trade accuracy for wall-clock time via `IMOLTP_SCALE`).
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        let s = |v: u64| ((v as f64 * factor).round() as u64).max(50);
        WindowSpec {
            warmup: s(self.warmup),
            measured: s(self.measured),
            reps: self.reps,
        }
    }
}

/// How worker threads interleave between window barriers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pacing {
    /// Transactions execute in a deterministic global round-robin order
    /// (worker `w` runs global transactions `t` with `t % workers == w`).
    Lockstep,
    /// Workers run freely; only the window edges are barrier-aligned.
    Free,
}

/// Run a single-worker experiment: `step(i)` must execute exactly one
/// transaction on the engine under test, which must emit all its simulated
/// activity on `core`.
pub fn measure<F: FnMut(u64)>(
    sim: &Sim,
    core: usize,
    spec: WindowSpec,
    mut step: F,
) -> Measurement {
    let cfg = sim.config();
    let mut txn_no = 0u64;
    for _ in 0..spec.warmup {
        step(txn_no);
        txn_no += 1;
    }
    let mut runs = Vec::with_capacity(spec.reps as usize);
    for _ in 0..spec.reps.max(1) {
        let profiler = Profiler::attach(sim, core);
        for _ in 0..spec.measured {
            step(txn_no);
            txn_no += 1;
        }
        runs.push(Measurement::from_sample(
            &cfg,
            &profiler.sample(),
            spec.measured,
        ));
    }
    Measurement::average(&runs)
}

/// A turn gate: hands the global transaction sequence to worker threads
/// one turn at a time. Poisoned (waking every waiter into a panic) if the
/// holder of a turn panics, so a failed worker cannot deadlock the rest.
struct TurnGate {
    cur: Mutex<(u64, bool)>,
    cv: Condvar,
}

impl TurnGate {
    fn new() -> Self {
        TurnGate {
            cur: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    fn run<R>(&self, turn: u64, f: impl FnOnce() -> R) -> R {
        let mut cur = self.cur.lock().unwrap();
        loop {
            assert!(!cur.1, "turn gate poisoned by a worker panic");
            if cur.0 == turn {
                break;
            }
            cur = self.cv.wait(cur).unwrap();
        }
        drop(cur);
        let r = f();
        self.cur.lock().unwrap().0 += 1;
        self.cv.notify_all();
        r
    }

    fn poison(&self) {
        if let Ok(mut cur) = self.cur.lock() {
            cur.1 = true;
        }
        self.cv.notify_all();
    }
}

/// A reusable rendezvous like [`std::sync::Barrier`], but poisonable so a
/// panicking worker releases (and fails) the others instead of hanging
/// them.
struct SyncPoint {
    state: Mutex<(usize, u64, bool)>,
    cv: Condvar,
    n: usize,
}

impl SyncPoint {
    fn new(n: usize) -> Self {
        SyncPoint {
            state: Mutex::new((0, 0, false)),
            cv: Condvar::new(),
            n,
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        assert!(!st.2, "sync point poisoned by a worker panic");
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 += 1;
            self.cv.notify_all();
            return;
        }
        let generation = st.1;
        while st.1 == generation {
            assert!(!st.2, "sync point poisoned by a worker panic");
            st = self.cv.wait(st).unwrap();
        }
    }

    fn poison(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.2 = true;
        }
        self.cv.notify_all();
    }
}

/// Poisons the gate and sync point if the owning worker thread unwinds.
struct PanicFence<'a> {
    gate: &'a TurnGate,
    barrier: &'a SyncPoint,
}

impl Drop for PanicFence<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.gate.poison();
            self.barrier.poison();
        }
    }
}

/// Run a multi-worker experiment with one OS thread per worker. `make(w)`
/// builds worker `w`'s step closure on the calling thread; each closure is
/// then moved to its worker thread and invoked once per transaction with a
/// globally unique transaction number. Worker `w`'s simulated activity
/// must land on `cores[w]`.
///
/// Building a closure (and the engine session inside it, which holds its
/// core's exclusive `uarch_sim::CorePort`) on this thread and moving it to
/// the worker is the supported pattern: the port's core is claimed by
/// whichever thread issues the first access, and re-claimed after a move.
/// The thread-safety contract is only that one thread at a time drives a
/// given core — which the one-worker-per-core layout guarantees.
///
/// The measured windows are barrier-delimited: all workers finish warm-up,
/// then every repetition attaches per-worker profilers, runs
/// `spec.measured` transactions per worker, and samples — so each window
/// covers exactly the same transactions on every run. The result averages
/// the per-worker measurements, as the paper does ("we filter hardware
/// counter results for each worker thread separately and report their
/// average").
pub fn measure_workers<F, G>(
    sim: &Sim,
    cores: &[usize],
    spec: WindowSpec,
    pacing: Pacing,
    mut make: G,
) -> Measurement
where
    F: FnMut(u64) + Send,
    G: FnMut(usize) -> F,
{
    assert!(!cores.is_empty());
    let n = cores.len() as u64;
    let cfg = sim.config();
    let reps = spec.reps.max(1);
    let steps: Vec<F> = (0..cores.len()).map(&mut make).collect();
    let gate = TurnGate::new();
    let barrier = SyncPoint::new(cores.len());

    let per_worker: Vec<Vec<Sample>> = std::thread::scope(|scope| {
        let handles: Vec<_> = steps
            .into_iter()
            .enumerate()
            .map(|(w, mut step)| {
                let (gate, barrier) = (&gate, &barrier);
                let core = cores[w];
                scope.spawn(move || {
                    let _fence = PanicFence { gate, barrier };
                    let run_segment = |step: &mut F, base: u64, count: u64| match pacing {
                        Pacing::Lockstep => {
                            for i in 0..count {
                                let t = base + i * n + w as u64;
                                gate.run(t, || step(t));
                            }
                        }
                        Pacing::Free => {
                            for i in 0..count {
                                step(base + i * n + w as u64);
                            }
                        }
                    };
                    run_segment(&mut step, 0, spec.warmup);
                    barrier.wait();
                    let mut samples = Vec::with_capacity(reps as usize);
                    for rep in 0..reps as u64 {
                        let profiler = Profiler::attach(sim, core);
                        barrier.wait(); // all attached before anyone steps
                        let base = (spec.warmup + rep * spec.measured) * n;
                        run_segment(&mut step, base, spec.measured);
                        barrier.wait(); // all done before anyone samples
                        samples.push(profiler.sample());
                        barrier.wait();
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut runs = Vec::with_capacity(reps as usize);
    for rep in 0..reps as usize {
        let per_rep: Vec<Measurement> = per_worker
            .iter()
            .map(|samples| Measurement::from_sample(&cfg, &samples[rep], spec.measured))
            .collect();
        runs.push(Measurement::average(&per_rep));
    }
    Measurement::average(&runs)
}

/// Run a multi-worker experiment from a single shared step function:
/// `step(t, w)` executes global transaction `t` on worker `w` (whose
/// activity lands on core `cores[w]`). Workers run on their own OS
/// threads, interleaved in deterministic lockstep; the shared closure is
/// serialized behind a lock, which the lockstep order makes contention-free.
pub fn measure_multi<F: FnMut(u64, usize) + Send>(
    sim: &Sim,
    cores: &[usize],
    spec: WindowSpec,
    step: F,
) -> Measurement {
    let step = &Mutex::new(step);
    measure_workers(sim, cores, spec, Pacing::Lockstep, |w| {
        move |t| (step.lock().unwrap())(t, w)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_sim::{MachineConfig, ModuleSpec};

    #[test]
    fn measure_counts_only_measured_window() {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let m = sim.register_module(ModuleSpec::new("txn", 4096));
        let mem = sim.mem(0).with_module(m);
        let spec = WindowSpec {
            warmup: 10,
            measured: 100,
            reps: 2,
        };
        let result = measure(&sim, 0, spec, |_| mem.exec(1000));
        // Each rep measures 100 txns x 1000 instructions.
        assert_eq!(result.counts.instructions, 2 * 100 * 1000);
        assert_eq!(result.txns, 200);
        assert!((result.instr_per_txn - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_lowers_measured_misses() {
        // With warmup, the compulsory misses of a small loop are excluded.
        let cold = {
            let sim = Sim::new(MachineConfig::ivy_bridge(1));
            let m = sim.register_module(ModuleSpec::new("txn", 16 << 10).reuse(1.0));
            let mem = sim.mem(0).with_module(m);
            let spec = WindowSpec {
                warmup: 0,
                measured: 1,
                reps: 1,
            };
            measure(&sim, 0, spec, |_| mem.exec(4096))
                .counts
                .total_misses()
        };
        let warm = {
            let sim = Sim::new(MachineConfig::ivy_bridge(1));
            let m = sim.register_module(ModuleSpec::new("txn", 16 << 10).reuse(1.0));
            let mem = sim.mem(0).with_module(m);
            let spec = WindowSpec {
                warmup: 50,
                measured: 1,
                reps: 1,
            };
            measure(&sim, 0, spec, |_| mem.exec(4096))
                .counts
                .total_misses()
        };
        assert!(warm < cold, "warm={warm} cold={cold}");
    }

    #[test]
    fn measure_multi_averages_workers() {
        let sim = Sim::new(MachineConfig::ivy_bridge(2));
        let m = sim.register_module(ModuleSpec::new("txn", 4096));
        let spec = WindowSpec {
            warmup: 0,
            measured: 10,
            reps: 1,
        };
        let result = measure_multi(&sim, &[0, 1], spec, |_, w| {
            sim.mem(w)
                .with_module(m)
                .exec(if w == 0 { 1000 } else { 3000 });
        });
        // Average of 1000 and 3000 instructions per txn.
        assert!((result.instr_per_txn - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn measure_workers_runs_threads_with_own_state() {
        let sim = Sim::new(MachineConfig::ivy_bridge(4));
        let m = sim.register_module(ModuleSpec::new("txn", 4096));
        let spec = WindowSpec {
            warmup: 5,
            measured: 20,
            reps: 2,
        };
        let result = measure_workers(&sim, &[0, 1, 2, 3], spec, Pacing::Lockstep, |w| {
            let mem = sim.mem(w).with_module(m);
            let mut local = 0u64; // per-worker state lives on its thread
            move |_t| {
                local += 1;
                mem.exec(500);
                std::hint::black_box(local);
            }
        });
        // txns and counts sum across workers and reps; ratios average.
        assert_eq!(result.txns, 4 * 20 * 2);
        assert!((result.instr_per_txn - 500.0).abs() < 1e-9);
        // All four cores saw warmup + measured work.
        for c in 0..4 {
            assert_eq!(sim.counters(c).instructions, (5 + 2 * 20) * 500);
        }
    }

    #[test]
    fn lockstep_is_deterministic_and_ordered() {
        // The gate must hand out turns in strict global order; record the
        // observed order and check it equals 0..N with worker t % n.
        let sim = Sim::new(MachineConfig::ivy_bridge(2));
        let spec = WindowSpec {
            warmup: 3,
            measured: 4,
            reps: 1,
        };
        let order = Mutex::new(Vec::new());
        measure_multi(&sim, &[0, 1], spec, |t, w| {
            order.lock().unwrap().push((t, w));
        });
        let order = order.into_inner().unwrap();
        let expected: Vec<(u64, usize)> = (0..(3 + 4) * 2).map(|t| (t, (t % 2) as usize)).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn free_pacing_completes_all_transactions() {
        let sim = Sim::new(MachineConfig::ivy_bridge(2));
        let m = sim.register_module(ModuleSpec::new("txn", 4096));
        let spec = WindowSpec {
            warmup: 0,
            measured: 50,
            reps: 1,
        };
        let result = measure_workers(&sim, &[0, 1], spec, Pacing::Free, |w| {
            let mem = sim.mem(w).with_module(m);
            move |_t| mem.exec(100)
        });
        assert_eq!(result.counts.instructions, 2 * 50 * 100); // summed across workers
        for c in 0..2 {
            assert_eq!(sim.counters(c).instructions, 50 * 100);
        }
    }

    #[test]
    fn scaled_window_clamps_to_minimum() {
        let spec = WindowSpec {
            warmup: 100,
            measured: 100,
            reps: 3,
        }
        .scaled(0.001);
        assert_eq!(spec.warmup, 50);
        assert_eq!(spec.measured, 50);
    }
}
