//! Per-core *and* per-module golden counter streams for fixed-seed
//! single-worker runs, captured before the lock-free fast-path refactor
//! (owned core ports, striped LLC, queued coherence). The refactor must be
//! observation-equivalent: every event counter, per core and per module,
//! stays bit-identical. The full counter state is folded into an FNV-1a
//! hash so a drift anywhere — a module's store count, a single L2I miss —
//! flips the digest.

use imoltp::analysis::{measure, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, TpcB, Workload};
use imoltp::sim::{EventCounts, MachineConfig, Sim};
use imoltp::systems::{build_system, DbmsMIndex, SystemKind};

/// FNV-1a over a stream of u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn counts(&mut self, c: &EventCounts) {
        self.word(c.instructions);
        self.word(c.code_fetches);
        self.word(c.loads);
        self.word(c.stores);
        for m in c.misses {
            self.word(m);
        }
        self.word(c.mispredicts);
        self.word(c.store_misses);
        self.word(c.invalidations);
    }
}

/// Hash the cumulative per-core counters plus every module's counters
/// (with the module count, so a registry change also shows up).
fn digest(sim: &Sim, core: usize) -> u64 {
    let mut h = Fnv::new();
    h.counts(&sim.counters(core));
    let mods = sim.module_counters(core);
    h.word(mods.len() as u64);
    for mc in &mods {
        h.counts(mc);
    }
    h.0
}

fn micro_digest(kind: SystemKind) -> u64 {
    micro_digest_on(kind, MachineConfig::ivy_bridge(1))
}

fn micro_digest_on(kind: SystemKind, machine: MachineConfig) -> u64 {
    let sim = Sim::new(machine);
    let mut db = build_system(kind, &sim, 1);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(30_000).seed(4242);
    sim.offline(|| w.setup(db.as_mut(), 1));
    sim.warm_data();
    let mut s = db.session(0);
    let spec = WindowSpec {
        warmup: 300,
        measured: 800,
        reps: 2,
    };
    let _ = measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).unwrap());
    drop(s);
    digest(&sim, 0)
}

fn tpcb_digest(kind: SystemKind) -> u64 {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(kind, &sim, 1);
    let mut w = TpcB::with_branches(1).seed(55);
    sim.offline(|| w.setup(db.as_mut(), 1));
    sim.warm_data();
    let mut s = db.session(0);
    let spec = WindowSpec {
        warmup: 100,
        measured: 300,
        reps: 1,
    };
    let _ = measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).unwrap());
    drop(s);
    digest(&sim, 0)
}

/// Same fixed-seed micro run on two cores, driven from one thread by
/// alternating the two sessions so the interleaving is deterministic,
/// folding both cores' counter state into one digest.
fn micro_digest_two_cores(kind: SystemKind, machine: MachineConfig) -> u64 {
    let sim = Sim::new(machine);
    let mut db = build_system(kind, &sim, 2);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(30_000).seed(4242);
    sim.offline(|| w.setup(db.as_mut(), 2));
    sim.warm_data();
    let mut s0 = db.session(0);
    let mut s1 = db.session(1);
    for _ in 0..400 {
        w.exec(s0.as_mut(), 0).unwrap();
        w.exec(s1.as_mut(), 1).unwrap();
    }
    drop(s0);
    drop(s1);
    let mut h = Fnv::new();
    h.word(digest(&sim, 0));
    h.word(digest(&sim, 1));
    h.0
}

/// A one-socket NUMA machine must be *bit-identical* to the flat machine it
/// degenerates to: `numa(1, n)` shares ivy_bridge's LLC geometry, every
/// home classification resolves to socket 0, and no remote penalty can
/// fire. Anything less means the multi-socket extension perturbed the
/// single-socket fast path, which the absolute goldens above would also
/// catch — this test localizes the blame to the topology change.
#[test]
fn numa_single_socket_digests_match_flat_machine() {
    for kind in [SystemKind::VoltDb, SystemKind::HyPer, SystemKind::ShoreMt] {
        assert_eq!(
            micro_digest_on(kind, MachineConfig::numa(1, 1)),
            micro_digest(kind),
            "{kind:?}: numa(1,1) digest diverged from ivy_bridge(1)"
        );
    }
    for kind in [SystemKind::VoltDb, SystemKind::HyPer] {
        assert_eq!(
            micro_digest_two_cores(kind, MachineConfig::numa(1, 2)),
            micro_digest_two_cores(kind, MachineConfig::ivy_bridge(2)),
            "{kind:?}: numa(1,2) digest diverged from ivy_bridge(2)"
        );
    }
}

#[test]
fn micro_per_module_counters_match_pre_refactor_golden() {
    let golden: [(SystemKind, u64); 5] = [
        (SystemKind::ShoreMt, 0x6ae751592cc8930c),
        (SystemKind::DbmsD, 0x2d7dc538f56f5def),
        (SystemKind::VoltDb, 0x6e18b160812ce719),
        (SystemKind::HyPer, 0x4875208288f5e48b),
        (
            SystemKind::DbmsM {
                index: DbmsMIndex::Hash,
                compiled: true,
            },
            0x08cc8456c034ca2f,
        ),
    ];
    for (kind, want) in golden {
        let got = micro_digest(kind);
        assert_eq!(
            got, want,
            "{kind:?}: per-module counter digest {got:#018x} != golden {want:#018x}"
        );
    }
}

#[test]
fn tpcb_per_module_counters_match_pre_refactor_golden() {
    let golden: [(SystemKind, u64); 2] = [
        (SystemKind::DbmsD, 0x664ddb711f528efb),
        (SystemKind::HyPer, 0xc3b92d3254a65068),
    ];
    for (kind, want) in golden {
        let got = tpcb_digest(kind);
        assert_eq!(
            got, want,
            "{kind:?}: per-module counter digest {got:#018x} != golden {want:#018x}"
        );
    }
}

#[test]
#[ignore = "capture helper"]
fn print_digests() {
    for kind in [
        SystemKind::ShoreMt,
        SystemKind::DbmsD,
        SystemKind::VoltDb,
        SystemKind::HyPer,
        SystemKind::DbmsM {
            index: DbmsMIndex::Hash,
            compiled: true,
        },
    ] {
        println!("micro {kind:?}: {:#018x}", micro_digest(kind));
    }
    for kind in [SystemKind::DbmsD, SystemKind::HyPer] {
        println!("tpcb {kind:?}: {:#018x}", tpcb_digest(kind));
    }
}
