//! Queued-coherence stress: store invalidations published onto the
//! per-core queues under concurrent storms are **never lost**. After the
//! storm quiesces and every core reaches an access boundary (a counter
//! snapshot counts), the machine-wide published and applied totals must
//! match — the invariant that replaces the old O(cores) lock walk's
//! "applied immediately" guarantee.

use imoltp::sim::{MachineConfig, Sim};

/// Lines in the shared region below (1 MB / 64 B).
const REGION_LINES: u64 = 16 * 1024;

#[test]
fn concurrent_store_storm_loses_no_invalidations() {
    const CORES: usize = 4;
    const OPS_PER_CORE: u64 = 200_000;
    let sim = Sim::new(MachineConfig::ivy_bridge(CORES));
    let region = sim.alloc(REGION_LINES * 64, 64);
    std::thread::scope(|s| {
        for core in 0..CORES {
            let sim = sim.clone();
            s.spawn(move || {
                let _port = sim.try_checkout(core).expect("port free at start");
                let mem = sim.mem(core);
                // Interleaved loads and stores over one shared region: every
                // store races the other cores' drains.
                for i in 0..OPS_PER_CORE {
                    let line = (i.wrapping_mul(2654435761) + core as u64 * 911) % REGION_LINES;
                    if i % 3 == 0 {
                        mem.write(region + line * 64, 8);
                    } else {
                        mem.read(region + line * 64, 8);
                    }
                }
            });
        }
    });
    // Quiesced. Snapshot every core — each snapshot is an access boundary
    // that applies the core's remaining queued invalidations — and check
    // the exactness invariants.
    let mut loads = 0;
    let mut stores = 0;
    let mut invalidations = 0;
    for core in 0..CORES {
        let c = sim.counters(core);
        loads += c.loads;
        stores += c.stores;
        invalidations += c.invalidations;
    }
    assert_eq!(
        loads + stores,
        CORES as u64 * OPS_PER_CORE,
        "ops went missing"
    );
    assert_eq!(stores, CORES as u64 * OPS_PER_CORE.div_ceil(3));
    let (pushed, applied) = sim.machine().coherence_totals();
    assert!(pushed > 0, "storm should publish invalidations");
    assert_eq!(pushed, applied, "queued invalidations were lost");
    // Every applied invalidation that found the line resident was counted;
    // the count can never exceed what was published.
    assert!(invalidations <= pushed);
    assert!(
        invalidations > 0,
        "shared-region storm must hit resident lines"
    );
}

#[test]
fn ring_overflow_is_drained_losslessly() {
    let sim = Sim::new(MachineConfig::ivy_bridge(2));
    let region = sim.alloc(REGION_LINES * 64, 64);
    // Core 1 becomes active (caches one line), then goes idle: nothing
    // drains its queue while core 0 storms it far past the ring capacity,
    // forcing the overflow path.
    sim.mem(1).read(region, 8);
    let mem = sim.mem(0);
    const STORES: u64 = 5_000;
    for i in 0..STORES {
        mem.write(region + (i % REGION_LINES) * 64, 8);
    }
    let (pushed, applied_during) = sim.machine().coherence_totals();
    assert_eq!(pushed, STORES, "every store targets the one active peer");
    assert!(
        applied_during < pushed,
        "core 1 is idle; its queue must be backlogged"
    );
    // Core 1's next access boundary applies everything, ring and overflow.
    let c1 = sim.counters(1);
    let (pushed, applied) = sim.machine().coherence_totals();
    assert_eq!(pushed, applied, "overflowed invalidations were lost");
    // The one line core 1 held was invalidated (and counted) exactly once.
    assert_eq!(c1.invalidations, 1);
}
