//! End-to-end tests for the structured tracing layer (`obs`): the span
//! stream must form valid per-core trees, span counter deltas must
//! partition the profiled window exactly, and the Perfetto export must be
//! well-formed JSON with non-decreasing timestamps — across two cores.

use std::collections::BTreeSet;

use imoltp::analysis::Profiler;
use imoltp::bench::{DbSize, MicroBench, Workload};
use imoltp::obs::sink::{PerfettoSink, RingBufferSink, SharedBuf};
use imoltp::obs::{self, AggSnapshot, Phase, SpanRecord, Tracer};
use imoltp::sim::{EventCounts, MachineConfig, Sim};
use imoltp::systems::{build_system, SystemKind};

const CORES: usize = 2;
const TXNS_PER_CORE: u64 = 30;

/// Run a read-write micro-benchmark on two cores with the tracer
/// installed. Returns the raw span records, the rendered Perfetto JSON
/// document, and each core's (window counter delta, span aggregate).
fn traced_two_core_run() -> (Vec<SpanRecord>, String, Vec<(EventCounts, AggSnapshot)>) {
    let sim = Sim::new(MachineConfig::ivy_bridge(CORES));
    let mut db = build_system(SystemKind::VoltDb, &sim, CORES);
    let mut w = MicroBench::new(DbSize::Mb1).rows_per_txn(2).read_write();
    sim.offline(|| w.setup(db.as_mut(), CORES));

    let tracer = Tracer::new(&sim);
    let ring = RingBufferSink::new(1 << 16);
    tracer.add_sink(Box::new(ring.clone()));
    let buf = SharedBuf::new();
    let clock_ghz = sim.config().clock_ghz;
    tracer.add_sink(Box::new(PerfettoSink::new(
        Box::new(buf.clone()),
        clock_ghz,
    )));
    obs::install(tracer);

    let profilers: Vec<Profiler> = (0..CORES).map(|c| Profiler::attach(&sim, c)).collect();
    let engine: &'static str = db.name();
    let mut sessions: Vec<_> = (0..CORES).map(|c| db.session(c)).collect();
    for i in 0..TXNS_PER_CORE as usize * CORES {
        let core = i % CORES;
        let _t = obs::span(engine, Phase::Txn, core);
        w.exec(sessions[core].as_mut(), core)
            .expect("traced transaction failed");
    }
    let per_core: Vec<(EventCounts, AggSnapshot)> = profilers
        .iter()
        .map(|p| {
            let s = p.sample();
            (
                s.counts,
                s.spans
                    .expect("tracer installed, so samples carry span aggregates"),
            )
        })
        .collect();

    let tracer = obs::uninstall().expect("tracer still installed");
    tracer.finish();
    (ring.records(), buf.contents(), per_core)
}

#[test]
fn span_stream_forms_valid_trees_on_both_cores() {
    let (records, _, _) = traced_two_core_run();
    assert!(!records.is_empty());

    for core in 0..CORES {
        let recs: Vec<&SpanRecord> = records.iter().filter(|r| r.core == core).collect();
        assert!(!recs.is_empty(), "core {core} produced no spans");

        // The driver's Txn spans are the only roots: one per transaction.
        let roots: Vec<&&SpanRecord> = recs.iter().filter(|r| r.depth == 0).collect();
        assert_eq!(
            roots.len() as u64,
            TXNS_PER_CORE,
            "core {core}: one root per txn"
        );
        assert!(roots.iter().all(|r| r.phase == Phase::Txn));

        for r in &recs {
            assert!(
                r.start_cycles <= r.end_cycles,
                "core {core}: span {:?} runs backwards",
                r.phase
            );
            assert!(
                r.incl.instructions >= r.self_counts.instructions,
                "core {core}: inclusive delta smaller than exclusive delta"
            );
        }

        // Every non-root span nests inside some span exactly one level up
        // that opened earlier (smaller seq) and encloses it in cycle time —
        // i.e. the records reconstruct a valid forest of trees.
        for r in recs.iter().filter(|r| r.depth > 0) {
            let parent = recs.iter().find(|q| {
                q.depth == r.depth - 1
                    && q.seq < r.seq
                    && q.start_cycles <= r.start_cycles
                    && r.end_cycles <= q.end_cycles
            });
            assert!(
                parent.is_some(),
                "core {core}: span {:?} depth={} seq={} has no enclosing parent",
                r.phase,
                r.depth,
                r.seq
            );
        }
    }
}

#[test]
fn per_phase_self_deltas_partition_each_cores_window_exactly() {
    let (_, _, per_core) = traced_two_core_run();
    for (core, (counts, spans)) in per_core.iter().enumerate() {
        assert!(counts.instructions > 0, "core {core} executed instructions");
        // The Txn root spans cover every transaction, and phase self
        // deltas partition each root exactly — so the sum over all
        // phases must reproduce the profiler's window delta bit-for-bit.
        assert_eq!(
            &spans.self_total(),
            counts,
            "core {core}: per-phase self deltas must sum to the window total"
        );
        // The engine opened nested phases (not just the driver's root).
        let phases: BTreeSet<&str> = spans
            .phases
            .keys()
            .map(|(_, phase)| phase.label())
            .collect();
        assert!(phases.contains("txn"));
        assert!(
            phases.len() > 1,
            "core {core}: engine phases traced: {phases:?}"
        );
    }
}

#[test]
fn perfetto_export_is_valid_json_with_monotone_timestamps() {
    let (_, perfetto, _) = traced_two_core_run();
    let doc = obs::json::parse(&perfetto).expect("perfetto export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut spans = 0u64;
    let mut counters = 0u64;
    let mut tids: BTreeSet<u64> = BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph field");
        if ph == "M" {
            continue; // metadata records carry no timestamp
        }
        let ts = ev.get("ts").and_then(|t| t.as_f64()).expect("ts field");
        assert!(ts >= 0.0);
        assert!(
            ts >= last_ts,
            "timestamps must be non-decreasing: {ts} < {last_ts}"
        );
        last_ts = ts;
        if let Some(tid) = ev.get("tid").and_then(|t| t.as_f64()) {
            tids.insert(tid as u64);
        }
        match ph {
            "X" => {
                spans += 1;
                let dur = ev.get("dur").and_then(|d| d.as_f64()).expect("dur field");
                assert!(dur >= 0.0);
            }
            "C" => counters += 1,
            other => panic!("unexpected event kind {other:?}"),
        }
    }
    assert!(
        spans >= TXNS_PER_CORE * CORES as u64,
        "one X event per span at least"
    );
    assert!(counters > 0, "stall counter track present");
    assert_eq!(
        tids,
        (0..CORES as u64).collect::<BTreeSet<u64>>(),
        "both simulated cores appear as Perfetto threads"
    );
}
