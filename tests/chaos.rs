//! Chaos-suite integration tests: the deterministic fault-injection layer
//! end to end — plan replay purity, oracle safety under faults, and
//! bit-identical counter digests when no fault fires.
//!
//! Chaos runs serialize on the injector's process-global run lock, so
//! these tests are safe under `RUST_TEST_THREADS>1`.

use imoltp::bench::DbSize;
use imoltp::faults::FaultPlan;
use imoltp::harness::chaos::{self, ChaosCfg};
use imoltp::harness::WorkloadCfg;
use imoltp::systems::SystemKind;

fn small_cfg(system: SystemKind, seed: u64, rate: f64) -> ChaosCfg {
    let mut cfg = ChaosCfg::new(
        system,
        WorkloadCfg::Micro {
            size: DbSize::Mb1,
            rows_per_txn: 1,
            read_only: false,
            strings: false,
        },
        "micro-rw",
    );
    cfg.seed = seed;
    cfg.fault_rate = rate;
    cfg.workers = 2;
    cfg.window = Some(imoltp::analysis::WindowSpec {
        warmup: 20,
        measured: 60,
        reps: 1,
    });
    cfg
}

/// Property: for any seed, a plan that round-trips through its JSON form
/// yields a byte-identical fault schedule — fire decisions are a pure
/// function of `(seed, site, core, ordinal)` and survive serialization.
#[test]
fn fault_plans_replay_identically_from_json() {
    let sites = ["driver/conflict", "shore_mt/latch", "voltdb/clog", "x/y"];
    for seed in [0u64, 1, 7, 42, 0xdead_beef, u64::MAX, 0x9e37_79b9] {
        let plan = FaultPlan::uniform(seed, 0.13)
            .site("driver/poison", 0.02)
            .site("x/y", 0.5);
        let json = plan.to_json().render();
        let replayed = FaultPlan::parse(&json).expect("plan round-trips");
        assert_eq!(plan, replayed, "seed {seed}: JSON round-trip is lossless");
        for site in sites {
            for core in 0..3usize {
                for n in 0..200u64 {
                    assert_eq!(
                        plan.fires(site, core, n),
                        replayed.fires(site, core, n),
                        "seed {seed} site {site} core {core} ordinal {n}"
                    );
                }
            }
        }
    }
}

/// At fault-rate 0 the chaos harness is a no-op wrapper: two runs produce
/// bit-identical per-core counter digests and table contents, no retries,
/// no recovery events.
#[test]
fn rate_zero_runs_are_bit_identical() {
    let a = chaos::run(&small_cfg(SystemKind::VoltDb, 7, 0.0));
    let b = chaos::run(&small_cfg(SystemKind::VoltDb, 7, 0.0));
    assert_eq!(a.digests, b.digests, "per-core counter digests");
    assert_eq!(a.table_digest, b.table_digest, "final table contents");
    assert_eq!(a.faults_fired, 0);
    assert_eq!(a.outcomes.retry.retries(), 0);
    assert_eq!(a.outcomes.retry.gave_up, 0);
    assert_eq!(a.lost_updates, 0);
    assert_eq!(a.phantom_updates, 0);
    assert!(a.outcomes.retry.commits > 0);
}

/// Under faults, the retry/backoff layer recovers every engine with zero
/// lost updates: confirmed commits all reach the table, and retries
/// actually happen (the driver-level sites fire in every build).
#[test]
fn faulty_runs_lose_nothing() {
    for system in [
        SystemKind::VoltDb,
        SystemKind::ShoreMt,
        SystemKind::DbmsM {
            index: imoltp::systems::DbmsMIndex::Hash,
            compiled: true,
        },
    ] {
        let r = chaos::run(&small_cfg(system, 7, 0.15));
        assert!(r.faults_fired > 0, "{system:?}: plan must fire");
        assert!(r.outcomes.retry.retries() > 0, "{system:?}: must retry");
        assert!(r.outcomes.retry.commits > 0, "{system:?}: must commit");
        assert_eq!(r.lost_updates, 0, "{system:?}: lost updates");
        assert_eq!(r.phantom_updates, 0, "{system:?}: phantom updates");
        // The manifest records the replay inputs.
        let m = &r.manifest;
        assert_eq!(
            m.get("plan")
                .and_then(|p| p.get("seed"))
                .and_then(|s| s.as_f64()),
            Some(7.0)
        );
    }
}

/// Replaying a run from its manifest's plan reproduces the run bit for
/// bit: same fault schedule, same digests, same outcome counters.
#[test]
fn manifest_replay_reproduces_the_run() {
    let cfg = small_cfg(SystemKind::VoltDb, 42, 0.1);
    let first = chaos::run(&cfg);
    assert!(first.faults_fired > 0, "needs faults to be a real replay");

    // Round-trip the whole manifest through its rendered JSON, as the
    // CLI's --plan path does.
    let manifest_json =
        imoltp::obs::json::parse(&first.manifest.render()).expect("manifest parses");
    let mut replay_cfg = cfg.clone();
    replay_cfg.plan_override =
        Some(FaultPlan::from_json(&manifest_json).expect("manifest embeds the plan"));
    let second = chaos::run(&replay_cfg);

    assert_eq!(first.digests, second.digests, "per-core counter digests");
    assert_eq!(first.table_digest, second.table_digest);
    assert_eq!(first.faults_fired, second.faults_fired);
    assert_eq!(first.outcomes, second.outcomes);
}

/// Recovery machinery: force every driver-level fault class hard enough
/// that poisoning and re-opening actually occur, and the run still ends
/// consistent (graceful give-ups allowed, lost updates not).
#[test]
fn poison_and_offline_recovery_keeps_the_oracle() {
    let mut cfg = small_cfg(SystemKind::ShoreMt, 3, 0.0);
    cfg.plan_override = Some(
        FaultPlan::uniform(3, 0.0)
            .site("driver/poison", 0.2)
            .site("core/offline", 0.1)
            .site("driver/conflict", 0.2),
    );
    let r = chaos::run(&cfg);
    assert!(r.outcomes.poisons > 0, "poison site must fire at rate 0.2");
    assert_eq!(
        r.outcomes.reopens, r.outcomes.poisons,
        "every poison is healed by a session re-open"
    );
    assert!(r.outcomes.offline_events > 0);
    assert!(r.outcomes.offline_txns >= r.outcomes.offline_events);
    assert_eq!(r.lost_updates, 0);
    assert_eq!(r.phantom_updates, 0);
}

/// The lost-update oracle holds for every (engine, CC protocol) pair at
/// one smoke seed: the pluggable protocols recover through the same
/// retry/backoff layer as the engine defaults, with nothing lost and
/// nothing phantom. The manifest records which protocol ran.
#[test]
fn every_engine_and_protocol_keeps_the_oracle() {
    use imoltp::systems::CcPolicy;
    let mut policies = vec![CcPolicy::EngineDefault];
    policies.extend(CcPolicy::ALL);
    for system in SystemKind::ALL {
        for &cc in &policies {
            let mut cfg = small_cfg(system, 9, 0.12);
            cfg.cc = cc;
            cfg.window = Some(imoltp::analysis::WindowSpec {
                warmup: 10,
                measured: 30,
                reps: 1,
            });
            let label = format!("{system:?} under {}", cc.label());
            let r = chaos::run(&cfg);
            assert!(r.faults_fired > 0, "{label}: plan must fire");
            assert!(r.outcomes.retry.commits > 0, "{label}: must commit");
            assert_eq!(r.lost_updates, 0, "{label}: lost updates");
            assert_eq!(r.phantom_updates, 0, "{label}: phantom updates");
            assert_eq!(
                r.manifest.get("cc").and_then(|v| v.as_str()),
                Some(cc.label()),
                "{label}: manifest records the protocol"
            );
        }
    }
}

/// Engine-internal sites only exist when the consumer is built with
/// `--features faults`; this asserts the deep hooks (latch/WAL/validate)
/// actually fire there and stay recoverable.
#[cfg(feature = "faults")]
#[test]
fn engine_internal_sites_fire_under_the_faults_feature() {
    let r = chaos::run(&small_cfg(SystemKind::ShoreMt, 11, 0.2));
    let rr = &r.outcomes.retry;
    assert!(
        rr.latch_timeouts > 0,
        "shore_mt/latch must fire at rate 0.2"
    );
    assert!(rr.log_failures > 0, "shore_mt/wal must fire at rate 0.2");
    assert_eq!(r.lost_updates, 0);
    assert_eq!(r.phantom_updates, 0);
}
