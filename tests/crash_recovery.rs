//! Crash/replay: run committed work on a disk-based engine, "crash"
//! mid-transaction, and rebuild an identical database from the WAL.

use imoltp::bench::{TpcB, Workload};
use imoltp::db::{Column, DataType, Db, Schema, TableDef, Value};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::store::recovery::replay;
use imoltp::systems::ShoreMt;

fn micro_table(db: &mut ShoreMt) -> imoltp::db::TableId {
    db.create_table(TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("k", DataType::Long),
            Column::new("v", DataType::Long),
        ]),
        1000,
    ))
}

#[test]
fn replayed_database_matches_original() {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = ShoreMt::new(&sim);
    db.retain_log();
    let t = micro_table(&mut db);

    let mut s = db.session(0);
    sim.offline(|| {
        for i in 0..300u64 {
            s.begin();
            let k = i % 97;
            match i % 4 {
                0 => {
                    let _ = s.insert(t, k, &[Value::Long(k as i64), Value::Long(i as i64)]);
                }
                1 => {
                    let _ = s.update(t, k, &mut |r| r[1] = Value::Long(-(i as i64)));
                }
                2 => {
                    let _ = s.delete(t, k);
                }
                _ => {
                    let _ = s.read(t, k);
                }
            }
            s.commit().unwrap();
        }
        // "Crash": an in-flight transaction never commits.
        s.begin();
        s.insert(t, 9999, &[Value::Long(9999), Value::Long(1)])
            .unwrap();
        // (no commit)
    });

    // Recover into a fresh engine.
    let sim2 = Sim::new(MachineConfig::ivy_bridge(1));
    let mut fresh = ShoreMt::new(&sim2);
    let t2 = micro_table(&mut fresh);
    assert_eq!(t, t2);
    let mut fs = fresh.session(0);
    let records = db.log_records();
    let stats = sim2.offline(|| replay(&records, fs.as_mut()).unwrap());
    assert!(stats.txns > 0);
    assert_eq!(stats.losers, 1, "the in-flight transaction is a loser");

    // Same visible state everywhere. (Close the crashed transaction on
    // the original first; its uncommitted insert stays local to it.)
    s.abort();
    sim2.offline(|| {
        fs.begin();
        s.begin();
        for k in 0..100u64 {
            let a = s.read(t, k).unwrap();
            let b = fs.read(t2, k).unwrap();
            // The original still holds its uncommitted insert; committed
            // keys < 97 must match exactly.
            assert_eq!(a, b, "key {k} diverged after replay");
        }
        assert!(
            fs.read(t2, 9999).unwrap().is_none(),
            "loser work must not survive"
        );
        s.commit().unwrap();
        fs.commit().unwrap();
    });
}

#[test]
fn tpcb_survives_crash_replay() {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = ShoreMt::new(&sim);
    db.retain_log();
    let mut w = TpcB::with_branches(1).seed(321);
    sim.offline(|| w.setup(&mut db, 1));
    sim.offline(|| {
        let mut s = db.session(0);
        for _ in 0..60 {
            w.exec(s.as_mut(), 0).unwrap();
        }
    });
    let expected = w.total_balance(&db, "account");

    // Replay the log (load + 60 transactions) into a fresh engine with the
    // same table layout.
    let sim2 = Sim::new(MachineConfig::ivy_bridge(1));
    let mut fresh = ShoreMt::new(&sim2);
    let mut w2 = TpcB::with_branches(1).seed(321);
    // Create tables only (no load): replay refills them.
    // TpcB has no tables-only setup, so build defs the same way by
    // replaying the loader's log records too — which the retained log
    // already contains.
    let long = |n: &str| Column::new(n, DataType::Long);
    let strc = |n: &str| Column::new(n, DataType::Str);
    fresh.create_table(TableDef::new(
        "branch",
        Schema::new(vec![long("b_id"), long("b_balance"), strc("b_filler")]),
        1,
    ));
    fresh.create_table(TableDef::new(
        "teller",
        Schema::new(vec![
            long("t_id"),
            long("t_balance"),
            long("t_b_id"),
            strc("t_filler"),
        ]),
        10,
    ));
    fresh.create_table(TableDef::new(
        "account",
        Schema::new(vec![
            long("a_id"),
            long("a_balance"),
            long("a_b_id"),
            strc("a_filler"),
        ]),
        100_000,
    ));
    fresh.create_table(TableDef::new(
        "history",
        Schema::new(vec![
            long("h_seq"),
            long("h_t_id"),
            long("h_b_id"),
            long("h_a_id"),
            long("h_delta"),
            strc("h_filler"),
        ]),
        10_000,
    ));
    let mut fs = fresh.session(0);
    let records = db.log_records();
    let stats = sim2.offline(|| replay(&records, fs.as_mut()).unwrap());
    assert!(
        stats.applied > 100_000,
        "loader records replayed: {}",
        stats.applied
    );
    let _ = &mut w2; // (workload object only provided the deterministic seed)

    // TPC-B invariant holds in the recovered database: account balances
    // sum to the same total as the original.
    let account = imoltp::db::TableId(2);
    let mut recovered = 0i64;
    sim2.offline(|| {
        fs.begin();
        for k in 0..100_000u64 {
            if let Some(row) = fs.read(account, k).unwrap() {
                recovered += row[1].long();
            }
        }
        fs.commit().unwrap();
    });
    assert_eq!(recovered, expected);
}

#[test]
fn dbms_m_recovers_from_its_redo_log() {
    // In-memory engines have no pages to replay into — recovery *is* the
    // redo log. Run work on DBMS M, crash mid-transaction, rebuild.
    use imoltp::systems::{DbmsM, DbmsMOptions};

    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = DbmsM::new(&sim, DbmsMOptions::default());
    db.retain_log();
    let t = db.create_table(TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("k", DataType::Long),
            Column::new("v", DataType::Long),
        ]),
        1000,
    ));
    let mut s = db.session(0);
    sim.offline(|| {
        for i in 0..200u64 {
            s.begin();
            let k = i % 61;
            match i % 3 {
                0 => {
                    let _ = s.insert(t, k, &[Value::Long(k as i64), Value::Long(i as i64)]);
                }
                1 => {
                    let _ = s.update(t, k, &mut |r| r[1] = Value::Long(i as i64 * 2));
                }
                _ => {
                    let _ = s.delete(t, k);
                }
            }
            s.commit().unwrap();
        }
        // Crash with a buffered (never-committed) write.
        s.begin();
        s.insert(t, 777, &[Value::Long(777), Value::Long(1)])
            .unwrap();
    });

    let sim2 = Sim::new(MachineConfig::ivy_bridge(1));
    let mut fresh = DbmsM::new(&sim2, DbmsMOptions::default());
    let t2 = fresh.create_table(TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("k", DataType::Long),
            Column::new("v", DataType::Long),
        ]),
        1000,
    ));
    let mut fs = fresh.session(0);
    let records = db.log_records();
    sim2.offline(|| replay(&records, fs.as_mut()).unwrap());

    s.abort();
    sim2.offline(|| {
        s.begin();
        fs.begin();
        for k in 0..61u64 {
            assert_eq!(
                s.read(t, k).unwrap(),
                fs.read(t2, k).unwrap(),
                "key {k} diverged"
            );
        }
        assert!(fs.read(t2, 777).unwrap().is_none());
        s.commit().unwrap();
        fs.commit().unwrap();
    });
}
