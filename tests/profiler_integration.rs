//! Cross-crate profiler plumbing: module attribution, window arithmetic,
//! and the cycle model must stay consistent through a full engine run.

use imoltp::analysis::{measure, Profiler, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, Workload};
use imoltp::sim::{EventCounts, MachineConfig, Sim};
use imoltp::systems::{build_system, SystemKind};

#[test]
fn module_counters_partition_engine_activity() {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(SystemKind::ShoreMt, &sim, 1);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(4000);
    sim.offline(|| w.setup(db.as_mut(), 1));

    let mut s = db.session(0);
    let p = Profiler::attach(&sim, 0);
    for _ in 0..200 {
        w.exec(s.as_mut(), 0).unwrap();
    }
    let s = p.sample();

    // Per-module deltas must sum exactly to the aggregate delta.
    let mut sum = EventCounts::default();
    for m in &s.modules {
        sum.add(&m.counts);
    }
    assert_eq!(sum, s.counts);

    // The engine-side modules did real work.
    let engine_instr: u64 = s
        .modules
        .iter()
        .filter(|m| m.engine_side)
        .map(|m| m.counts.instructions)
        .sum();
    assert!(engine_instr > 0);
    assert!(
        engine_instr < s.counts.instructions,
        "frontend must also appear"
    );
}

#[test]
fn engine_share_is_a_valid_fraction_everywhere() {
    for kind in SystemKind::ALL {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let mut db = build_system(kind, &sim, 1);
        let mut w = MicroBench::new(DbSize::Mb1).with_rows(4000);
        sim.offline(|| w.setup(db.as_mut(), 1));
        let mut s = db.session(0);
        let spec = WindowSpec {
            warmup: 200,
            measured: 400,
            reps: 2,
        };
        let m = measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).unwrap());
        let share = m.engine_share();
        assert!(
            (0.01..=1.0).contains(&share),
            "{kind:?}: engine share {share:.3} out of range"
        );
        // Module shares sum to ~1 (every cycle is attributed somewhere).
        let total: f64 = m.modules.iter().map(|x| x.share).sum();
        assert!(
            (total - 1.0).abs() < 0.05,
            "{kind:?}: module shares sum to {total:.3}"
        );
    }
}

#[test]
fn windows_average_not_accumulate() {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(SystemKind::HyPer, &sim, 1);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(4000);
    sim.offline(|| w.setup(db.as_mut(), 1));
    let mut s = db.session(0);
    let one_rep = measure(
        &sim,
        0,
        WindowSpec {
            warmup: 100,
            measured: 500,
            reps: 1,
        },
        |_| w.exec(s.as_mut(), 0).unwrap(),
    );
    let three_reps = measure(
        &sim,
        0,
        WindowSpec {
            warmup: 0,
            measured: 500,
            reps: 3,
        },
        |_| w.exec(s.as_mut(), 0).unwrap(),
    );
    // Averaged metrics stay per-window regardless of repetition count.
    let ratio = three_reps.instr_per_txn / one_rep.instr_per_txn;
    assert!((0.9..1.1).contains(&ratio), "instr/txn drifted: {ratio:.3}");
}

#[test]
fn offline_mode_is_invisible_to_counters() {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(SystemKind::VoltDb, &sim, 1);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(2000);
    let before = sim.counters(0);
    sim.offline(|| w.setup(db.as_mut(), 1));
    let after = sim.counters(0);
    assert_eq!(before, after, "bulk load must not perturb counters");
    // But the data structures are fully populated.
    assert_eq!(db.row_count(imoltp::db::TableId(0)), 2000);
}
