//! Property-based tests over the core data structures and codecs.

use std::collections::BTreeMap;

use imoltp::db::tuple;
use imoltp::db::{KeyPack, Value};
use imoltp::idx::{Art, CcBTree, DiskBTree, HashIndex, Index};
use imoltp::sim::cache::Cache;
use imoltp::sim::config::CacheGeometry;
use imoltp::sim::{MachineConfig, Mem, Sim};
use proptest::prelude::*;

fn mem() -> Mem {
    Sim::new(MachineConfig::ivy_bridge(1)).mem(0)
}

/// An arbitrary index operation.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
    Replace(u64, u64),
    Scan(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small key space so operations collide often.
    let key = 0u64..300;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Get),
        key.clone().prop_map(Op::Remove),
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Replace(k, v)),
        (key.clone(), key).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
    ]
}

fn check_against_model(index: &mut dyn Index, mem: &Mem, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let inserted = index.insert(mem, k, v);
                assert_eq!(inserted, !model.contains_key(&k), "insert {k}");
                if inserted {
                    model.insert(k, v);
                }
            }
            Op::Get(k) => {
                assert_eq!(index.get(mem, k), model.get(&k).copied(), "get {k}");
            }
            Op::Remove(k) => {
                assert_eq!(index.remove(mem, k), model.remove(&k), "remove {k}");
            }
            Op::Replace(k, v) => {
                let old = index.replace(mem, k, v);
                assert_eq!(old, model.get(&k).copied(), "replace {k}");
                if old.is_some() {
                    model.insert(k, v);
                }
            }
            Op::Scan(lo, hi) => {
                if index.supports_range() {
                    let mut got = Vec::new();
                    index.scan(mem, lo, hi, &mut |k, v| {
                        got.push((k, v));
                        true
                    });
                    let expect: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, expect, "scan [{lo},{hi}]");
                }
            }
        }
        assert_eq!(index.len(), model.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn disk_btree_behaves_like_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mem = mem();
        let mut idx = DiskBTree::new(&mem);
        check_against_model(&mut idx, &mem, &ops);
    }

    #[test]
    fn cc_btree_behaves_like_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mem = mem();
        let mut idx = CcBTree::new(&mem);
        check_against_model(&mut idx, &mem, &ops);
    }

    #[test]
    fn art_behaves_like_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mem = mem();
        let mut idx = Art::new(&mem);
        check_against_model(&mut idx, &mem, &ops);
    }

    #[test]
    fn hash_behaves_like_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mem = mem();
        let mut idx = HashIndex::with_capacity(&mem, 64);
        check_against_model(&mut idx, &mem, &ops);
    }

    #[test]
    fn art_handles_arbitrary_u64_keys(keys in proptest::collection::btree_set(any::<u64>(), 1..300)) {
        let mem = mem();
        let mut idx = Art::new(&mem);
        for (i, &k) in keys.iter().enumerate() {
            prop_assert!(idx.insert(&mem, k, i as u64));
        }
        for (i, &k) in keys.iter().enumerate() {
            prop_assert_eq!(idx.get(&mem, k), Some(i as u64));
        }
        // Ordered scan over the full range yields the sorted key set.
        let mut seen = Vec::new();
        idx.scan(&mem, 0, u64::MAX, &mut |k, _| { seen.push(k); true });
        let expect: Vec<u64> = keys.iter().copied().collect();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn tuple_codec_round_trips(row in proptest::collection::vec(
        prop_oneof![
            any::<i64>().prop_map(Value::Long),
            "[a-zA-Z0-9 ]{0,80}".prop_map(Value::Str),
        ],
        0..12,
    )) {
        let encoded = tuple::encode(&row);
        prop_assert_eq!(encoded.len(), tuple::encoded_len(&row));
        prop_assert_eq!(tuple::decode(&encoded).unwrap(), row);
    }

    #[test]
    fn tuple_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = tuple::decode(&bytes); // must return Err, not panic
    }

    #[test]
    fn keypack_preserves_order(
        a1 in 0u64..1024, b1 in 0u64..65536,
        a2 in 0u64..1024, b2 in 0u64..65536,
    ) {
        let k1 = KeyPack::new().field(a1, 10).field(b1, 16).get();
        let k2 = KeyPack::new().field(a2, 10).field(b2, 16).get();
        prop_assert_eq!(k1.cmp(&k2), (a1, b1).cmp(&(a2, b2)));
    }

    #[test]
    fn cache_hits_plus_misses_equals_accesses(lines in proptest::collection::vec(0u64..4096, 1..2000)) {
        let mut c = Cache::new(CacheGeometry::new(8 << 10, 64, 4));
        for &l in &lines {
            c.access(l);
        }
        prop_assert_eq!(c.accesses(), lines.len() as u64);
        prop_assert_eq!(c.hits() + c.misses(), c.accesses());
        // Residency never exceeds capacity.
        prop_assert!(c.resident_lines() <= c.capacity_lines());
    }

    #[test]
    fn cache_single_line_rereference_always_hits(line in any::<u64>(), n in 1usize..50) {
        let mut c = Cache::new(CacheGeometry::new(8 << 10, 64, 4));
        c.access(line % (1 << 40));
        for _ in 0..n {
            prop_assert!(c.access(line % (1 << 40)).hit);
        }
    }
}
