//! Property-based tests over the core data structures and codecs.
//!
//! Randomized with the workspace's deterministic `rand` shim instead of
//! proptest (unavailable offline): each property runs a fixed number of
//! seeded cases, so failures reproduce exactly from the printed seed.

use std::collections::{BTreeMap, BTreeSet};

use imoltp::db::tuple;
use imoltp::db::{KeyPack, Value};
use imoltp::idx::{Art, CcBTree, DiskBTree, HashIndex, Index};
use imoltp::sim::cache::Cache;
use imoltp::sim::config::CacheGeometry;
use imoltp::sim::{MachineConfig, Mem, Sim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn mem() -> Mem {
    Sim::new(MachineConfig::ivy_bridge(1)).mem(0)
}

/// Run `CASES` independent cases, each with a fresh seeded RNG.
fn for_each_case(property: &str, f: impl Fn(&mut StdRng)) {
    for case in 0..CASES {
        let seed = 0xD15C_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        // The seed in scope makes any assert below reproducible; print it
        // on the failure path only (panic output includes stdout).
        println!("{property}: case seed {seed:#x}");
        f(&mut rng);
    }
}

/// An arbitrary index operation.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
    Replace(u64, u64),
    Scan(u64, u64),
}

fn random_ops(rng: &mut StdRng) -> Vec<Op> {
    let n = rng.random_range(1usize..200);
    (0..n)
        .map(|_| {
            // Small key space so operations collide often.
            let k = rng.random_range(0u64..300);
            match rng.random_range(0u8..5) {
                0 => Op::Insert(k, rng.random_range(0u64..=u64::MAX)),
                1 => Op::Get(k),
                2 => Op::Remove(k),
                3 => Op::Replace(k, rng.random_range(0u64..=u64::MAX)),
                _ => {
                    let b = rng.random_range(0u64..300);
                    Op::Scan(k.min(b), k.max(b))
                }
            }
        })
        .collect()
}

fn check_against_model(index: &mut dyn Index, mem: &Mem, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let inserted = index.insert(mem, k, v);
                assert_eq!(inserted, !model.contains_key(&k), "insert {k}");
                if inserted {
                    model.insert(k, v);
                }
            }
            Op::Get(k) => {
                assert_eq!(index.get(mem, k), model.get(&k).copied(), "get {k}");
            }
            Op::Remove(k) => {
                assert_eq!(index.remove(mem, k), model.remove(&k), "remove {k}");
            }
            Op::Replace(k, v) => {
                let old = index.replace(mem, k, v);
                assert_eq!(old, model.get(&k).copied(), "replace {k}");
                if old.is_some() {
                    model.insert(k, v);
                }
            }
            Op::Scan(lo, hi) => {
                if index.supports_range() {
                    let mut got = Vec::new();
                    index.scan(mem, lo, hi, &mut |k, v| {
                        got.push((k, v));
                        true
                    });
                    let expect: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, expect, "scan [{lo},{hi}]");
                }
            }
        }
        assert_eq!(index.len(), model.len() as u64);
    }
}

#[test]
fn disk_btree_behaves_like_btreemap() {
    for_each_case("disk_btree_behaves_like_btreemap", |rng| {
        let ops = random_ops(rng);
        let mem = mem();
        let mut idx = DiskBTree::new(&mem);
        check_against_model(&mut idx, &mem, &ops);
    });
}

#[test]
fn cc_btree_behaves_like_btreemap() {
    for_each_case("cc_btree_behaves_like_btreemap", |rng| {
        let ops = random_ops(rng);
        let mem = mem();
        let mut idx = CcBTree::new(&mem);
        check_against_model(&mut idx, &mem, &ops);
    });
}

#[test]
fn art_behaves_like_btreemap() {
    for_each_case("art_behaves_like_btreemap", |rng| {
        let ops = random_ops(rng);
        let mem = mem();
        let mut idx = Art::new(&mem);
        check_against_model(&mut idx, &mem, &ops);
    });
}

#[test]
fn hash_behaves_like_btreemap() {
    for_each_case("hash_behaves_like_btreemap", |rng| {
        let ops = random_ops(rng);
        let mem = mem();
        let mut idx = HashIndex::with_capacity(&mem, 64);
        check_against_model(&mut idx, &mem, &ops);
    });
}

#[test]
fn art_handles_arbitrary_u64_keys() {
    for_each_case("art_handles_arbitrary_u64_keys", |rng| {
        let n = rng.random_range(1usize..300);
        let keys: BTreeSet<u64> = (0..n).map(|_| rng.random_range(0u64..=u64::MAX)).collect();
        let mem = mem();
        let mut idx = Art::new(&mem);
        for (i, &k) in keys.iter().enumerate() {
            assert!(idx.insert(&mem, k, i as u64));
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(idx.get(&mem, k), Some(i as u64));
        }
        // Ordered scan over the full range yields the sorted key set.
        let mut seen = Vec::new();
        idx.scan(&mem, 0, u64::MAX, &mut |k, _| {
            seen.push(k);
            true
        });
        let expect: Vec<u64> = keys.iter().copied().collect();
        assert_eq!(seen, expect);
    });
}

fn random_row(rng: &mut StdRng) -> Vec<Value> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    let cols = rng.random_range(0usize..12);
    (0..cols)
        .map(|_| {
            if rng.random_range(0u8..2) == 0 {
                Value::Long(rng.random_range(i64::MIN..=i64::MAX))
            } else {
                let len = rng.random_range(0usize..=80);
                let s: String = (0..len)
                    .map(|_| ALPHABET[rng.random_range(0usize..ALPHABET.len())] as char)
                    .collect();
                Value::Str(s)
            }
        })
        .collect()
}

#[test]
fn tuple_codec_round_trips() {
    for_each_case("tuple_codec_round_trips", |rng| {
        let row = random_row(rng);
        let encoded = tuple::encode(&row);
        assert_eq!(encoded.len(), tuple::encoded_len(&row));
        assert_eq!(tuple::decode(&encoded).unwrap(), row);
    });
}

#[test]
fn tuple_decode_never_panics_on_garbage() {
    for_each_case("tuple_decode_never_panics_on_garbage", |rng| {
        let len = rng.random_range(0usize..128);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=u8::MAX)).collect();
        let _ = tuple::decode(&bytes); // must return Err, not panic
    });
}

#[test]
fn keypack_preserves_order() {
    for_each_case("keypack_preserves_order", |rng| {
        let (a1, b1) = (rng.random_range(0u64..1024), rng.random_range(0u64..65536));
        let (a2, b2) = (rng.random_range(0u64..1024), rng.random_range(0u64..65536));
        let k1 = KeyPack::new().field(a1, 10).field(b1, 16).get();
        let k2 = KeyPack::new().field(a2, 10).field(b2, 16).get();
        assert_eq!(k1.cmp(&k2), (a1, b1).cmp(&(a2, b2)));
    });
}

#[test]
fn cache_hits_plus_misses_equals_accesses() {
    for_each_case("cache_hits_plus_misses_equals_accesses", |rng| {
        let n = rng.random_range(1usize..2000);
        let lines: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..4096)).collect();
        let mut c = Cache::new(CacheGeometry::new(8 << 10, 64, 4));
        for &l in &lines {
            c.access(l);
        }
        assert_eq!(c.accesses(), lines.len() as u64);
        assert_eq!(c.hits() + c.misses(), c.accesses());
        // Residency never exceeds capacity.
        assert!(c.resident_lines() <= c.capacity_lines());
    });
}

#[test]
fn cache_single_line_rereference_always_hits() {
    for_each_case("cache_single_line_rereference_always_hits", |rng| {
        let line = rng.random_range(0u64..=u64::MAX) % (1 << 40);
        let n = rng.random_range(1usize..50);
        let mut c = Cache::new(CacheGeometry::new(8 << 10, 64, 4));
        c.access(line);
        for _ in 0..n {
            assert!(c.access(line).hit);
        }
    });
}
