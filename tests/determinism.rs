//! Reproducibility: identical seeds and configurations must produce
//! bit-identical simulated measurements — the property that makes the
//! figure tables in EXPERIMENTS.md stable across regenerations — and the
//! single-worker session API must reproduce the counter values measured
//! before the concurrent-execution refactor.

use imoltp::analysis::{measure, measure_workers, Measurement, Pacing, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, TpcB, Workload};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, DbmsMIndex, SystemKind};

fn run_micro(kind: SystemKind, seed: u64) -> Measurement {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(kind, &sim, 1);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(30_000).seed(seed);
    sim.offline(|| w.setup(db.as_mut(), 1));
    sim.warm_data();
    let mut s = db.session(0);
    let spec = WindowSpec {
        warmup: 300,
        measured: 800,
        reps: 2,
    };
    measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).unwrap())
}

#[test]
fn same_seed_same_counters() {
    for kind in [
        SystemKind::ShoreMt,
        SystemKind::HyPer,
        SystemKind::dbms_m_for_tpcc(),
    ] {
        let a = run_micro(kind, 1234);
        let b = run_micro(kind, 1234);
        assert_eq!(
            a.counts, b.counts,
            "{kind:?}: counters diverged across identical runs"
        );
        assert_eq!(
            a.cycles.to_bits(),
            b.cycles.to_bits(),
            "{kind:?}: cycles diverged"
        );
    }
}

#[test]
fn different_seed_different_trace() {
    let a = run_micro(SystemKind::VoltDb, 1);
    let b = run_micro(SystemKind::VoltDb, 2);
    // Same workload shape (instruction counts nearly equal) but a
    // different access trace (miss counts differ).
    assert!((a.instr_per_txn - b.instr_per_txn).abs() < a.instr_per_txn * 0.02);
    assert_ne!(a.counts.misses, b.counts.misses);
}

#[test]
fn tpcb_is_deterministic_end_to_end() {
    let run = || {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let mut db = build_system(SystemKind::DbmsD, &sim, 1);
        let mut w = TpcB::with_branches(1).seed(55);
        sim.offline(|| w.setup(db.as_mut(), 1));
        sim.warm_data();
        let mut s = db.session(0);
        let spec = WindowSpec {
            warmup: 100,
            measured: 300,
            reps: 1,
        };
        let m = measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).unwrap());
        drop(s);
        (m.counts, w.total_balance(db.as_ref(), "account"))
    };
    let (c1, b1) = run();
    let (c2, b2) = run();
    assert_eq!(c1, c2);
    assert_eq!(b1, b2);
}

/// Golden single-worker values captured before the concurrent-execution
/// refactor (session API, thread-safe machine). The Arc/Mutex plumbing must
/// not change a single simulated event for the paper's single-threaded
/// methodology: every counter and the cycle total are compared exactly.
struct Golden {
    kind: SystemKind,
    instructions: u64,
    loads: u64,
    stores: u64,
    misses: [u64; 6],
    mispredicts: u64,
    store_misses: u64,
    cycles_bits: u64,
}

#[test]
fn single_worker_counters_match_pre_refactor_golden() {
    let golden = [
        Golden {
            kind: SystemKind::ShoreMt,
            instructions: 46_244_800,
            loads: 61_288,
            stores: 12_800,
            misses: [859_385, 931, 0, 22_448, 18_419, 2_053],
            mispredicts: 1_168_121,
            store_misses: 4_422,
            cycles_bits: 0x4172d7404f111112,
        },
        Golden {
            kind: SystemKind::DbmsD,
            instructions: 58_404_800,
            loads: 38_847,
            stores: 12_800,
            misses: [1_991_146, 468_439, 0, 16_543, 16_543, 2_053],
            mispredicts: 1_518_077,
            store_misses: 4_325,
            cycles_bits: 0x417fa395a3555556,
        },
        Golden {
            kind: SystemKind::VoltDb,
            instructions: 35_316_800,
            loads: 19_281,
            stores: 2_800,
            misses: [937_798, 4_486, 35, 6_626, 5_821, 0],
            mispredicts: 968_077,
            store_misses: 200,
            cycles_bits: 0x416f7f0fbf777777,
        },
        Golden {
            kind: SystemKind::HyPer,
            instructions: 1_746_396,
            loads: 12_942,
            stores: 2_400,
            misses: [6_847, 44, 0, 8_246, 6_416, 0],
            mispredicts: 11_472,
            store_misses: 400,
            cycles_bits: 0x411c1ef999999999,
        },
        Golden {
            kind: SystemKind::DbmsM {
                index: DbmsMIndex::Hash,
                compiled: true,
            },
            instructions: 29_395_200,
            loads: 5_186,
            stores: 4_600,
            misses: [817_571, 297, 38, 3_178, 3_137, 0],
            mispredicts: 823_635,
            store_misses: 401,
            cycles_bits: 0x416aa5dda4cccccc,
        },
    ];
    for g in golden {
        let m = run_micro(g.kind, 4242);
        assert_eq!(m.counts.instructions, g.instructions, "{:?}", g.kind);
        assert_eq!(m.counts.loads, g.loads, "{:?}", g.kind);
        assert_eq!(m.counts.stores, g.stores, "{:?}", g.kind);
        assert_eq!(m.counts.misses, g.misses, "{:?}", g.kind);
        assert_eq!(m.counts.mispredicts, g.mispredicts, "{:?}", g.kind);
        assert_eq!(m.counts.store_misses, g.store_misses, "{:?}", g.kind);
        assert_eq!(m.counts.invalidations, 0, "{:?}", g.kind);
        assert_eq!(
            m.cycles.to_bits(),
            g.cycles_bits,
            "{:?}: cycles {} != golden {}",
            g.kind,
            m.cycles,
            f64::from_bits(g.cycles_bits)
        );
    }
}

#[test]
fn two_worker_lockstep_is_deterministic() {
    let run = || {
        let sim = Sim::new(MachineConfig::ivy_bridge(2));
        let mut db = build_system(SystemKind::VoltDb, &sim, 2);
        let mut w = MicroBench::new(DbSize::Mb1)
            .with_rows(30_000)
            .read_write()
            .seed(77);
        sim.offline(|| w.setup(db.as_mut(), 2));
        sim.warm_data();
        let spec = WindowSpec {
            warmup: 100,
            measured: 300,
            reps: 2,
        };
        let w = std::sync::Mutex::new(w);
        let db = &*db;
        let w = &w;
        measure_workers(&sim, &[0, 1], spec, Pacing::Lockstep, |worker| {
            let mut s = db.session(worker);
            move |_| w.lock().unwrap().exec(s.as_mut(), worker).unwrap()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
    assert_eq!(a.txns, 2 * 300 * 2);
}
