//! Reproducibility: identical seeds and configurations must produce
//! bit-identical simulated measurements — the property that makes the
//! figure tables in EXPERIMENTS.md stable across regenerations.

use imoltp::analysis::{measure, Measurement, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, TpcB, Workload};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, SystemKind};

fn run_micro(kind: SystemKind, seed: u64) -> Measurement {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(kind, &sim, 1);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(30_000).seed(seed);
    sim.offline(|| w.setup(db.as_mut(), 1));
    sim.warm_data();
    let spec = WindowSpec {
        warmup: 300,
        measured: 800,
        reps: 2,
    };
    measure(&sim, 0, spec, |_| w.exec(db.as_mut(), 0).unwrap())
}

#[test]
fn same_seed_same_counters() {
    for kind in [
        SystemKind::ShoreMt,
        SystemKind::HyPer,
        SystemKind::dbms_m_for_tpcc(),
    ] {
        let a = run_micro(kind, 1234);
        let b = run_micro(kind, 1234);
        assert_eq!(
            a.counts, b.counts,
            "{kind:?}: counters diverged across identical runs"
        );
        assert_eq!(
            a.cycles.to_bits(),
            b.cycles.to_bits(),
            "{kind:?}: cycles diverged"
        );
    }
}

#[test]
fn different_seed_different_trace() {
    let a = run_micro(SystemKind::VoltDb, 1);
    let b = run_micro(SystemKind::VoltDb, 2);
    // Same workload shape (instruction counts nearly equal) but a
    // different access trace (miss counts differ).
    assert!((a.instr_per_txn - b.instr_per_txn).abs() < a.instr_per_txn * 0.02);
    assert_ne!(a.counts.misses, b.counts.misses);
}

#[test]
fn tpcb_is_deterministic_end_to_end() {
    let run = || {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let mut db = build_system(SystemKind::DbmsD, &sim, 1);
        let mut w = TpcB::with_branches(1).seed(55);
        sim.offline(|| w.setup(db.as_mut(), 1));
        sim.warm_data();
        let spec = WindowSpec {
            warmup: 100,
            measured: 300,
            reps: 1,
        };
        let m = measure(&sim, 0, spec, |_| w.exec(db.as_mut(), 0).unwrap());
        (m.counts, w.total_balance(db.as_mut(), "account"))
    };
    let (c1, b1) = run();
    let (c2, b2) = run();
    assert_eq!(c1, c2);
    assert_eq!(b1, b2);
}
