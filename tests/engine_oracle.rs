//! Every engine vs. an in-memory oracle: random operation sequences must
//! produce exactly the same visible database state on all five archetypes.

use std::collections::BTreeMap;

use imoltp::db::{Column, DataType, Schema, TableDef};
use imoltp::db::{Db, OltpError, Value};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, SystemKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn table(db: &mut dyn Db) -> imoltp::db::TableId {
    db.create_table(TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("k", DataType::Long),
            Column::new("v", DataType::Long),
        ]),
        10_000,
    ))
}

fn run_sequence(kind: SystemKind, seed: u64, ops: usize) {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(kind, &sim, 1);
    let t = table(db.as_mut());
    let mut oracle: BTreeMap<u64, i64> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut s = db.session(0);
    sim.offline(|| {
        for i in 0..ops {
            let key = rng.random_range(0..500u64);
            s.begin();
            match rng.random_range(0..5) {
                0 => {
                    let val = rng.random_range(0..1_000_000i64);
                    let r = s.insert(t, key, &[Value::Long(key as i64), Value::Long(val)]);
                    match (r, oracle.contains_key(&key)) {
                        (Ok(()), false) => {
                            oracle.insert(key, val);
                        }
                        (Err(OltpError::DuplicateKey { .. }), true) => {}
                        (r, had) => {
                            panic!("{kind:?} op {i}: insert {key} -> {r:?}, oracle had={had}")
                        }
                    }
                }
                1 => {
                    let got = s.read(t, key).unwrap().map(|row| row[1].long());
                    assert_eq!(
                        got,
                        oracle.get(&key).copied(),
                        "{kind:?} op {i}: read {key}"
                    );
                }
                2 => {
                    let val = rng.random_range(0..1_000_000i64);
                    let updated = s
                        .update(t, key, &mut |row| row[1] = Value::Long(val))
                        .unwrap();
                    assert_eq!(
                        updated,
                        oracle.contains_key(&key),
                        "{kind:?} op {i}: update {key}"
                    );
                    if updated {
                        oracle.insert(key, val);
                    }
                }
                3 => {
                    let deleted = s.delete(t, key).unwrap();
                    assert_eq!(
                        deleted,
                        oracle.remove(&key).is_some(),
                        "{kind:?} op {i}: delete {key}"
                    );
                }
                _ => {
                    let lo = key.saturating_sub(50);
                    let hi = key + 50;
                    match s.scan(t, lo, hi, &mut |k, row| {
                        assert_eq!(
                            oracle.get(&k).copied(),
                            Some(row[1].long()),
                            "{kind:?} op {i}: scan row {k}"
                        );
                        true
                    }) {
                        Ok(n) => {
                            let expect = oracle.range(lo..=hi).count() as u64;
                            assert_eq!(n, expect, "{kind:?} op {i}: scan [{lo},{hi}] count");
                        }
                        Err(OltpError::Unsupported(_)) => {} // hash index
                        Err(e) => panic!("{kind:?} op {i}: scan failed {e}"),
                    }
                }
            }
            s.commit().unwrap();
        }
    });

    // Final state: every oracle row readable, every other key absent.
    sim.offline(|| {
        s.begin();
        for k in 0..500u64 {
            let got = s.read(t, k).unwrap().map(|row| row[1].long());
            assert_eq!(got, oracle.get(&k).copied(), "{kind:?} final state key {k}");
        }
        s.commit().unwrap();
        assert_eq!(db.row_count(t), oracle.len() as u64, "{kind:?} row count");
    });
}

#[test]
fn shore_mt_matches_oracle() {
    run_sequence(SystemKind::ShoreMt, 1, 3000);
}

#[test]
fn dbms_d_matches_oracle() {
    run_sequence(SystemKind::DbmsD, 2, 3000);
}

#[test]
fn voltdb_matches_oracle() {
    run_sequence(SystemKind::VoltDb, 3, 3000);
}

#[test]
fn hyper_matches_oracle() {
    run_sequence(SystemKind::HyPer, 4, 3000);
}

#[test]
fn dbms_m_btree_matches_oracle() {
    run_sequence(SystemKind::dbms_m_for_tpcc(), 5, 3000);
}

#[test]
fn dbms_m_hash_matches_oracle() {
    run_sequence(
        SystemKind::DbmsM {
            index: imoltp::systems::DbmsMIndex::Hash,
            compiled: false,
        },
        6,
        3000,
    );
}
