//! Cross-crate TPC-B / TPC-C correctness: the benchmarks' business
//! invariants must hold on every engine after a committed mix.

use imoltp::bench::tpcc::{TpcC, TpcCScale};
use imoltp::bench::{TpcB, Workload};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, SystemKind};

#[test]
fn tpcb_balance_invariant_every_engine() {
    for kind in SystemKind::ALL {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let mut db = build_system(kind, &sim, 1);
        let mut w = TpcB::with_branches(1).seed(99);
        sim.offline(|| w.setup(db.as_mut(), 1));
        sim.offline(|| {
            let mut s = db.session(0);
            for i in 0..200 {
                w.exec(s.as_mut(), 0)
                    .unwrap_or_else(|e| panic!("{kind:?} txn {i}: {e}"));
            }
        });
        // TPC-B's invariant: the sums of branch, teller, and account
        // balances all equal the sum of applied deltas.
        let b = w.total_balance(db.as_ref(), "branch");
        let t = w.total_balance(db.as_ref(), "teller");
        let a = w.total_balance(db.as_ref(), "account");
        assert_eq!(b, t, "{kind:?}");
        assert_eq!(b, a, "{kind:?}");
        assert_eq!(w.committed(), 200, "{kind:?}");
    }
}

#[test]
fn tpcc_invariants_every_engine() {
    for kind in [
        SystemKind::ShoreMt,
        SystemKind::DbmsD,
        SystemKind::VoltDb,
        SystemKind::HyPer,
        SystemKind::dbms_m_for_tpcc(),
        SystemKind::DbmsM {
            index: imoltp::systems::DbmsMIndex::Hash,
            compiled: true,
        },
    ] {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let mut db = build_system(kind, &sim, 1);
        let mut w = TpcC::with_scale(TpcCScale::tiny()).seed(5);
        sim.offline(|| w.setup(db.as_mut(), 1));
        sim.offline(|| {
            let mut s = db.session(0);
            for i in 0..400 {
                w.exec(s.as_mut(), 0)
                    .unwrap_or_else(|e| panic!("{kind:?} txn {i}: {e}"));
            }
        });
        assert_eq!(
            w.counts.total() + w.counts.new_order_rollbacks,
            400,
            "{kind:?}"
        );
        // The 45/43/4/4/4 mix: NewOrder and Payment dominate.
        assert!(w.counts.new_order > 120, "{kind:?}: {:?}", w.counts);
        assert!(w.counts.payment > 120, "{kind:?}: {:?}", w.counts);
        w.check_consistency(db.as_ref());
    }
}

#[test]
fn tpcc_multi_worker_partitions_stay_consistent() {
    let workers = 2;
    let sim = Sim::new(MachineConfig::ivy_bridge(workers));
    let mut db = build_system(SystemKind::VoltDb, &sim, workers);
    let mut w = TpcC::with_scale(TpcCScale {
        warehouses: 2,
        customers_per_district: 60,
        items: 200,
        initial_orders: 12,
    })
    .seed(77);
    sim.offline(|| w.setup(db.as_mut(), workers));
    sim.offline(|| {
        let mut sessions: Vec<_> = (0..workers).map(|c| db.session(c)).collect();
        for i in 0..300 {
            let worker = i % workers;
            w.exec(sessions[worker].as_mut(), worker)
                .unwrap_or_else(|e| panic!("txn {i}: {e}"));
        }
    });
    w.check_consistency(db.as_ref());
}
