//! Scaled-down assertions of the paper's headline findings. These are the
//! same qualitative claims the `figures` harness checks at full scale,
//! shrunk so the whole file runs in tens of seconds under `cargo test`.

use imoltp::analysis::{measure, Measurement, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, Workload};
use imoltp::sim::{MachineConfig, Sim, StallEvent};
use imoltp::systems::{build_system, DbmsMIndex, SystemKind};

/// Run the read-only micro-benchmark with `rows` table rows.
fn micro(kind: SystemKind, rows: u64, rows_per_txn: u32) -> Measurement {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(kind, &sim, 1);
    let mut w = MicroBench::new(DbSize::Mb1)
        .with_rows(rows)
        .rows_per_txn(rows_per_txn);
    sim.offline(|| w.setup(db.as_mut(), 1));
    sim.warm_data();
    let mut s = db.session(0);
    let spec = WindowSpec {
        warmup: 1200,
        measured: 2000,
        reps: 1,
    };
    measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).expect("txn"))
}

const SMALL: u64 = 16 * 1024; // fits every cache level that matters
const LARGE: u64 = 800_000; // far beyond the LLC

fn i_spki(m: &Measurement) -> f64 {
    m.spki[..3].iter().sum()
}

fn llcd(m: &Measurement) -> f64 {
    m.spki[StallEvent::LlcD as usize]
}

#[test]
fn ipc_barely_reaches_one_on_a_four_wide_machine() {
    // The paper's central finding (§8).
    for kind in SystemKind::ALL {
        let m = micro(kind, LARGE, 1);
        assert!(
            m.ipc < 1.4,
            "{kind:?}: IPC {:.2} too high for an OLTP workload beyond LLC",
            m.ipc
        );
    }
}

#[test]
fn more_than_token_stall_time_everywhere() {
    let cfg = MachineConfig::ivy_bridge(1);
    for kind in SystemKind::ALL {
        let m = micro(kind, LARGE, 1);
        let frac = m.stall_cycle_fraction(&cfg);
        assert!(
            frac > 0.4,
            "{kind:?}: stall fraction {frac:.2} — paper reports > 0.5"
        );
    }
}

#[test]
fn l1i_dominates_for_everyone_but_hyper() {
    for kind in SystemKind::ALL {
        let m = micro(kind, LARGE, 1);
        let l1i = m.spki[0];
        let max_other = m.spki[1..].iter().copied().fold(0.0, f64::max);
        if kind == SystemKind::HyPer {
            assert!(
                llcd(&m) > l1i,
                "HyPer should be data-bound: LLCD {:.0} vs L1I {l1i:.0}",
                llcd(&m)
            );
        } else {
            assert!(
                l1i >= max_other,
                "{kind:?}: L1I {l1i:.0} should dominate (max other {max_other:.0})"
            );
        }
    }
}

#[test]
fn hyper_flips_from_best_to_worst_as_data_outgrows_llc() {
    let small = micro(SystemKind::HyPer, SMALL, 1);
    let large = micro(SystemKind::HyPer, LARGE, 1);
    assert!(
        small.ipc > 1.5,
        "HyPer on cache-resident data should fly: IPC {:.2}",
        small.ipc
    );
    assert!(
        large.ipc < small.ipc * 0.6,
        "HyPer must collapse beyond LLC: {:.2} -> {:.2}",
        small.ipc,
        large.ipc
    );
    // And its data stalls per k-instr dwarf the other systems'.
    let others_max = [SystemKind::ShoreMt, SystemKind::VoltDb]
        .iter()
        .map(|&k| llcd(&micro(k, LARGE, 1)))
        .fold(0.0, f64::max);
    assert!(
        llcd(&large) > 3.0 * others_max,
        "HyPer LLCD {:.0} vs others {others_max:.0}",
        llcd(&large)
    );
}

#[test]
fn dbms_d_has_the_heaviest_instruction_stream() {
    let d = micro(SystemKind::DbmsD, LARGE, 1);
    for kind in [SystemKind::ShoreMt, SystemKind::VoltDb, SystemKind::HyPer] {
        let m = micro(kind, LARGE, 1);
        assert!(
            i_spki(&d) > i_spki(&m),
            "DBMS D I-SPKI {:.0} should exceed {kind:?}'s {:.0}",
            i_spki(&d),
            i_spki(&m)
        );
        assert!(
            d.instr_per_txn > m.instr_per_txn,
            "DBMS D should retire the most instructions"
        );
    }
}

#[test]
fn work_per_txn_moves_disk_and_memory_systems_in_opposite_directions() {
    // §4.2: rows/txn up => disk IPC up, in-memory IPC down.
    let shore_1 = micro(SystemKind::ShoreMt, LARGE, 1);
    let shore_100 = micro(SystemKind::ShoreMt, LARGE, 100);
    assert!(
        shore_100.ipc >= shore_1.ipc - 0.03,
        "Shore-MT IPC should not fall with more rows: {:.2} -> {:.2}",
        shore_1.ipc,
        shore_100.ipc
    );
    let hyper_1 = micro(SystemKind::HyPer, LARGE, 1);
    let hyper_100 = micro(SystemKind::HyPer, LARGE, 100);
    assert!(
        hyper_100.ipc <= hyper_1.ipc + 0.03,
        "HyPer IPC should not rise with more rows: {:.2} -> {:.2}",
        hyper_1.ipc,
        hyper_100.ipc
    );
    // Instruction stalls amortize for everyone.
    assert!(i_spki(&shore_100) < i_spki(&shore_1));
}

#[test]
fn compilation_cuts_instruction_stalls() {
    // §6.1 on DBMS M, 10 rows per transaction.
    let on = micro(
        SystemKind::DbmsM {
            index: DbmsMIndex::Hash,
            compiled: true,
        },
        LARGE,
        10,
    );
    let off = micro(
        SystemKind::DbmsM {
            index: DbmsMIndex::Hash,
            compiled: false,
        },
        LARGE,
        10,
    );
    assert!(
        i_spki(&on) < 0.8 * i_spki(&off),
        "compilation should cut I-stalls: {:.0} vs {:.0}",
        i_spki(&on),
        i_spki(&off)
    );
    assert!(on.instr_per_txn < off.instr_per_txn);
}

#[test]
fn btree_pays_more_llc_data_stalls_than_hash() {
    // §6.1: "LLC data stalls are 2-4x larger for the B-tree index". The
    // effect needs the index itself to be far beyond LLC capacity (at
    // LLC-boundary sizes the tree's upper levels stay cached and the two
    // structures converge), so this claim uses a deeper table.
    const DEEP: u64 = 2_000_000;
    let hash = micro(
        SystemKind::DbmsM {
            index: DbmsMIndex::Hash,
            compiled: true,
        },
        DEEP,
        10,
    );
    let btree = micro(
        SystemKind::DbmsM {
            index: DbmsMIndex::BTree,
            compiled: true,
        },
        DEEP,
        10,
    );
    // (The paper reports 2-4x at 2 billion rows; the gap scales with tree
    // depth, so the full-scale check asserts >1.35x at 3M rows and this
    // scaled-down canary a directional >1.2x at 2M.)
    assert!(
        llcd(&btree) > 1.2 * llcd(&hash),
        "btree {:.0} vs hash {:.0}",
        llcd(&btree),
        llcd(&hash)
    );
}

#[test]
fn read_write_variant_has_larger_instruction_footprint() {
    // Appendix A: update transactions retire more instructions and stall
    // more on the instruction side than reads.
    for kind in [SystemKind::ShoreMt, SystemKind::VoltDb] {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let mut db = build_system(kind, &sim, 1);
        let mut w = MicroBench::new(DbSize::Mb1).with_rows(LARGE).read_write();
        sim.offline(|| w.setup(db.as_mut(), 1));
        sim.warm_data();
        let mut s = db.session(0);
        let spec = WindowSpec {
            warmup: 1200,
            measured: 2000,
            reps: 1,
        };
        let rw = measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).expect("txn"));
        let ro = micro(kind, LARGE, 1);
        assert!(
            rw.instr_per_txn > ro.instr_per_txn,
            "{kind:?}: rw {:.0} <= ro {:.0}",
            rw.instr_per_txn,
            ro.instr_per_txn
        );
    }
}
