//! Service front-end integration: pool exhaustion sheds, poisoned
//! sessions heal, load-shed responses are retryable, and a seeded
//! many-connection run is deterministic end to end.

use engines::{SystemBuilder, SystemKind};
use microarch::WindowSpec;
use oltp::retry::{retry_txn, Backoff, RetryPolicy, RetryStats, TxnOutcome};
use service::{
    busy_error, AdmissionPolicy, Response, ServiceBuilder, SessionPool, WorkloadFactory,
};
use uarch_sim::{MachineConfig, Sim};
use workloads::{DbSize, MicroBench, Workload};

fn micro_factory() -> WorkloadFactory {
    Box::new(|| Box::new(MicroBench::new(DbSize::Mb1)) as Box<dyn Workload>)
}

/// A small but fully loaded service: more connections than sessions by
/// three orders of magnitude, a tight queue, and a short window.
fn small_service(seed: u64) -> service::Service {
    ServiceBuilder::new(SystemKind::VoltDb, "micro", micro_factory())
        .connections(2_000)
        .pool(2)
        .admission(AdmissionPolicy { queue_cap: 8 })
        .batch(4)
        .intake(16)
        .seed(seed)
        .window(WindowSpec {
            warmup: 60,
            measured: 120,
            reps: 1,
        })
        .compare_direct(false)
        .build()
}

#[test]
fn pool_exhaustion_sheds_instead_of_deadlocking() {
    let sim = Sim::new(MachineConfig::ivy_bridge(2));
    let db = SystemBuilder::new(SystemKind::HyPer).cores(2).build(&sim);
    let pool = SessionPool::new(db.as_ref(), 2);
    let held = pool.try_checkout(db.as_ref(), 0).expect("first checkout");
    // The slot is out: a second checkout returns immediately with None
    // (the dispatch loop answers Busy) instead of blocking the caller.
    assert!(pool.try_checkout(db.as_ref(), 0).is_none());
    assert!(pool.try_checkout(db.as_ref(), 1).is_some());
    drop(held);
    assert!(pool.try_checkout(db.as_ref(), 0).is_some());
    assert_eq!(pool.stats().busy, 1);
}

#[test]
fn poisoned_session_is_reopened_on_next_checkout() {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let db = SystemBuilder::new(SystemKind::ShoreMt).build(&sim);
    let pool = SessionPool::new(db.as_ref(), 1);
    {
        let mut g = pool.try_checkout(db.as_ref(), 0).unwrap();
        g.poison();
    }
    let mut g = pool.try_checkout(db.as_ref(), 0).expect("healed slot");
    assert_eq!(pool.stats().reopens, 1);
    // The replacement is a live session, not the wedged one.
    g.session().begin();
    g.session().commit().unwrap();
}

#[test]
fn load_shed_responses_are_retryable_by_the_retry_layer() {
    // What the client sees on a shed is Response::Busy; its error form
    // must fall in a retryable class so the existing retry layer drives
    // the resubmission without special-casing the service.
    let shed = Response::Busy { depth: 64 };
    let err = shed.as_error().expect("busy carries an error");
    assert_eq!(oltp::retry::classify(&err), oltp::retry::ErrorClass::Retry);

    // And retry_txn actually recovers from it: two sheds, then success.
    let policy = RetryPolicy::default();
    let mut backoff = Backoff::new(policy, 7);
    let mut stats = RetryStats::default();
    let outcome = retry_txn(
        &policy,
        &mut backoff,
        &mut stats,
        |attempt| {
            if attempt < 2 {
                Err(busy_error())
            } else {
                Ok(())
            }
        },
        |_| {},
    );
    assert_eq!(outcome, TxnOutcome::Committed { attempts: 3 });
    assert_eq!(stats.commits, 1);
    assert_eq!(stats.abort_retries, 2, "busy retries take the abort class");
}

#[test]
fn loaded_service_sheds_serves_and_accounts_exactly() {
    let report = small_service(42).run();
    // The engine pool stayed bounded while every stage kept its books.
    assert_eq!(report.sessions, 2);
    assert!(report.committed > 0, "transactions flowed end to end");
    assert!(
        report.shed > 0,
        "16 polls/turn against a cap-8 queue must shed"
    );
    assert!(report.queue_high_water <= 8);
    assert!(report.conns_served > 0);
    // The exactness invariant: every simulated instruction on the
    // service path is inside some span.
    assert_eq!(report.unattributed_instructions, 0);
    // Front-end phases are present in the breakdown.
    let rows = report.stage_rows();
    for phase in ["parse", "dispatch", "respond"] {
        assert!(
            rows.iter().any(|r| r.engine == "svc" && r.phase == phase),
            "missing svc/{phase} stage row"
        );
    }
    assert!(rows.iter().any(|r| r.phase == "txn"));
}

#[test]
fn seeded_run_is_deterministic() {
    let a = small_service(1234).run();
    let b = small_service(1234).run();
    assert_eq!(a.digest, b.digest, "same seed, same response streams");
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.admitted, b.admitted);
    let c = small_service(99).run();
    assert_ne!(
        (a.digest, a.shed),
        (c.digest, c.shed),
        "different seed must change client timing"
    );
}
