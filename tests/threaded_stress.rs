//! Free-running concurrency stress: worker sessions on real OS threads,
//! no lockstep pacing, hammering the engines' shared state. The invariants
//! the session API must uphold under true parallelism: no lost updates
//! (every committed increment is visible), row counts preserved, and
//! concurrency-control losers surfacing as retryable errors
//! ([`OltpError::Conflict`] under locking, [`OltpError::ValidationFailed`]
//! under OCC) rather than corruption.

use std::sync::Mutex;

use imoltp::analysis::{measure_workers, Pacing, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, Workload};
use imoltp::db::{Column, DataType, Db, OltpError, Schema, Session, TableDef, Value};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, ShoreMt, SystemKind};

const WORKERS: usize = 2;
const TXNS_PER_WORKER: u64 = 400;
const HOT_KEYS: u64 = 8;

/// Increment the value under `key` once, retrying until the transaction
/// commits. Conflicts may surface at the operation (lock conflict) or at
/// commit (validation failure); both leave the session reusable after
/// `abort`. Returns the number of retries consumed.
fn increment_until_committed(s: &mut dyn Session, t: imoltp::db::TableId, key: u64) -> u64 {
    let mut retries = 0;
    loop {
        s.begin();
        let attempt = s
            .update(t, key, &mut |row| {
                let v = row[1].long();
                row[1] = Value::Long(v + 1);
            })
            .and_then(|found| {
                assert!(found, "hot key {key} must exist");
                s.commit()
            });
        match attempt {
            Ok(()) => return retries,
            Err(
                OltpError::Conflict { .. }
                | OltpError::ValidationFailed { .. }
                | OltpError::DeadlockVictim { .. },
            ) => {
                s.abort();
                retries += 1;
                assert!(retries < 1_000_000, "livelock on key {key}");
            }
            Err(e) => panic!("unexpected engine error: {e}"),
        }
    }
}

fn counter_table(db: &mut dyn Db) -> imoltp::db::TableId {
    let t = db.create_table(TableDef::new(
        "counters",
        Schema::new(vec![
            Column::new("k", DataType::Long),
            Column::new("v", DataType::Long),
        ]),
        HOT_KEYS,
    ));
    let mut s = db.session(0);
    s.begin();
    for k in 0..HOT_KEYS {
        s.insert(t, k, &[Value::Long(k as i64), Value::Long(0)])
            .unwrap();
    }
    s.commit().unwrap();
    t
}

/// Two free-running threads increment the same hot keys through a
/// pessimistic-locking engine: every committed increment must survive.
#[test]
fn shore_mt_free_running_increments_lose_no_updates() {
    let sim = Sim::new(MachineConfig::ivy_bridge(WORKERS));
    let mut db = ShoreMt::new(&sim);
    let t = sim.offline(|| counter_table(&mut db));

    let db = &db;
    let committed: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|worker| {
                scope.spawn(move || {
                    let mut s = db.session(worker);
                    for i in 0..TXNS_PER_WORKER {
                        // Both workers walk the same key sequence: maximal
                        // contention on every transaction.
                        increment_until_committed(s.as_mut(), t, i % HOT_KEYS);
                    }
                    TXNS_PER_WORKER
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(committed, WORKERS as u64 * TXNS_PER_WORKER);

    // Zero lost updates: the counters sum to exactly the committed work.
    let mut s = db.session(0);
    s.begin();
    let mut total = 0i64;
    for k in 0..HOT_KEYS {
        total += s.read(t, k).unwrap().expect("hot key present")[1].long();
    }
    s.commit().unwrap();
    assert_eq!(total as u64, committed, "increments were lost");
    assert_eq!(db.row_count(t), HOT_KEYS, "row count must be preserved");
}

/// Same contention pattern through the OCC engine (DBMS M): losers abort
/// at validation, winners install — and nothing is lost or duplicated.
#[test]
fn occ_validation_losers_retry_without_losing_updates() {
    let sim = Sim::new(MachineConfig::ivy_bridge(WORKERS));
    let mut db = build_system(
        SystemKind::DbmsM {
            index: imoltp::systems::DbmsMIndex::Hash,
            compiled: true,
        },
        &sim,
        1,
    );
    let t = sim.offline(|| counter_table(db.as_mut()));

    // `Box<dyn Db>` is not `Sync`, so open the sessions on this thread —
    // they are `Send` and carry the shared engine state with them.
    let sessions: Vec<_> = (0..WORKERS).map(|w| db.session(w)).collect();
    std::thread::scope(|scope| {
        for mut s in sessions {
            scope.spawn(move || {
                for i in 0..TXNS_PER_WORKER {
                    increment_until_committed(s.as_mut(), t, i % HOT_KEYS);
                }
            });
        }
    });

    let mut s = db.session(0);
    s.begin();
    let mut total = 0i64;
    for k in 0..HOT_KEYS {
        total += s.read(t, k).unwrap().expect("hot key present")[1].long();
    }
    s.commit().unwrap();
    assert_eq!(total as u64, WORKERS as u64 * TXNS_PER_WORKER);
    assert_eq!(db.row_count(t), HOT_KEYS);
}

/// The read-write micro-benchmark under free-running (unpaced) workers:
/// the measured window completes, every worker's transactions commit, and
/// the table's row population is untouched (updates in place, no
/// insert/delete leakage).
#[test]
fn free_running_micro_benchmark_preserves_row_counts() {
    let sim = Sim::new(MachineConfig::ivy_bridge(WORKERS));
    let mut db = build_system(SystemKind::ShoreMt, &sim, 1);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(8_000).read_write();
    sim.offline(|| w.setup(db.as_mut(), WORKERS));
    sim.warm_data();
    let rows_before = db.row_count(imoltp::db::TableId(0));
    assert_eq!(rows_before, 8_000);

    let spec = WindowSpec {
        warmup: 100,
        measured: 400,
        reps: 1,
    };
    let cores: Vec<usize> = (0..WORKERS).collect();
    let w = Mutex::new(w);
    let m = {
        let db = &*db;
        let w = &w;
        measure_workers(&sim, &cores, spec, Pacing::Free, |worker| {
            let mut s = db.session(worker);
            move |_| {
                // Striped keys: each worker updates its own slice, so no
                // conflicts even free-running — every transaction commits.
                w.lock()
                    .unwrap()
                    .exec(s.as_mut(), worker)
                    .expect("striped read-write txn must commit");
            }
        })
    };
    assert_eq!(m.txns, WORKERS as u64 * 400);
    assert_eq!(
        db.row_count(imoltp::db::TableId(0)),
        rows_before,
        "read-write micro must only update in place"
    );
}
