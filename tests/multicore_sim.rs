//! Multi-worker simulation effects: coherence invalidations on shared
//! data, LLC capacity sharing, and partition isolation.

use imoltp::analysis::{measure, measure_multi, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, Workload};
use imoltp::db::{Column, DataType, Db, Schema, TableDef, Value};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, ShoreMt, SystemKind};

#[test]
fn shared_row_writes_invalidate_the_other_core() {
    // Two workers ping-pong updates to the same rows on a non-partitioned
    // engine: each write must invalidate the line in the other core's
    // private caches.
    let sim = Sim::new(MachineConfig::ivy_bridge(2));
    let mut db = ShoreMt::new(&sim);
    let t = db.create_table(TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("k", DataType::Long),
            Column::new("v", DataType::Long),
        ]),
        100,
    ));
    sim.offline(|| {
        let mut s = db.session(0);
        s.begin();
        for k in 0..64u64 {
            s.insert(t, k, &[Value::Long(k as i64), Value::Long(0)])
                .unwrap();
        }
        s.commit().unwrap();
    });
    let mut sessions: Vec<_> = (0..2).map(|c| db.session(c)).collect();
    for round in 0..200u64 {
        for core in [0usize, 1] {
            let s = sessions[core].as_mut();
            s.begin();
            s.update(t, round % 64, &mut |r| r[1] = Value::Long(round as i64))
                .unwrap();
            s.commit().unwrap();
        }
    }
    let inval0 = sim.counters(0).invalidations;
    let inval1 = sim.counters(1).invalidations;
    assert!(
        inval0 > 50 && inval1 > 50,
        "ping-pong writes must invalidate: core0={inval0} core1={inval1}"
    );
}

#[test]
fn partitioned_workers_do_not_invalidate_each_other() {
    let workers = 2;
    let sim = Sim::new(MachineConfig::ivy_bridge(workers));
    let mut db = build_system(SystemKind::VoltDb, &sim, workers);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(8000).read_write();
    sim.offline(|| w.setup(db.as_mut(), workers));
    let mut sessions: Vec<_> = (0..workers).map(|c| db.session(c)).collect();
    for i in 0..400usize {
        let worker = i % workers;
        w.exec(sessions[worker].as_mut(), worker).unwrap();
    }
    // Disjoint partitions: essentially no coherence traffic.
    let total = sim.counters(0).invalidations + sim.counters(1).invalidations;
    assert!(
        total < 10,
        "partitioned writes should not invalidate: {total}"
    );
}

#[test]
fn llc_sharing_raises_per_worker_misses() {
    // One worker with a ~40 MB working set vs two workers with the same
    // per-worker set sharing the 16 MB LLC: sharing must not *reduce*
    // per-worker LLC misses, and typically raises them.
    let run = |workers: usize| {
        let sim = Sim::new(MachineConfig::ivy_bridge(workers));
        let mut db = build_system(SystemKind::HyPer, &sim, workers);
        let mut w = MicroBench::new(DbSize::Mb1).with_rows(600_000 * workers as u64);
        sim.offline(|| w.setup(db.as_mut(), workers));
        sim.warm_data();
        let spec = WindowSpec {
            warmup: 1000,
            measured: 2000,
            reps: 1,
        };
        let m = if workers == 1 {
            let mut s = db.session(0);
            measure(&sim, 0, spec, |_| {
                w.exec(s.as_mut(), 0).unwrap();
            })
        } else {
            let cores: Vec<usize> = (0..workers).collect();
            let mut sessions: Vec<_> = cores.iter().map(|&c| db.session(c)).collect();
            measure_multi(&sim, &cores, spec, |_, worker| {
                w.exec(sessions[worker].as_mut(), worker).unwrap();
            })
        };
        m.spki[5] // LLC-D stalls per k-instr, per worker
    };
    let solo = run(1);
    let shared = run(2);
    assert!(
        shared > solo * 0.9,
        "sharing the LLC should not reduce per-worker misses: solo={solo:.0} shared={shared:.0}"
    );
}

#[test]
fn per_worker_measurements_are_balanced() {
    let workers = 4;
    let sim = Sim::new(MachineConfig::ivy_bridge(workers));
    let mut db = build_system(SystemKind::VoltDb, &sim, workers);
    let mut w = MicroBench::new(DbSize::Mb1).with_rows(64_000);
    sim.offline(|| w.setup(db.as_mut(), workers));
    let spec = WindowSpec {
        warmup: 200,
        measured: 600,
        reps: 1,
    };
    let cores: Vec<usize> = (0..workers).collect();
    let mut sessions: Vec<_> = cores.iter().map(|&c| db.session(c)).collect();
    let m = measure_multi(&sim, &cores, spec, |_, worker| {
        w.exec(sessions[worker].as_mut(), worker).unwrap();
    });
    // All four workers ran the same workload: the averaged per-worker
    // instruction count matches the single-worker cost closely.
    assert!(m.instr_per_txn > 10_000.0 && m.instr_per_txn < 60_000.0);
    // And every core retired work.
    for c in 0..workers {
        assert!(sim.counters(c).instructions > 1_000_000, "core {c} idle");
    }
}
