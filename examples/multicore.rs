//! The §7 multi-threading experiment in miniature: run the read-only
//! micro-benchmark with several workers — one data partition per worker,
//! single-site transactions, one OS thread and one engine session per
//! worker — and compare against single-threaded.
//!
//! ```text
//! cargo run --release --example multicore
//! ```

use std::sync::Mutex;

use imoltp::analysis::{measure, measure_workers, Pacing, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, Workload};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, SystemKind};

fn run(kind: SystemKind, workers: usize) -> (f64, f64, u64) {
    let sim = Sim::new(MachineConfig::ivy_bridge(workers));
    let mut db = build_system(kind, &sim, workers);
    let mut w = MicroBench::new(DbSize::Gb10);
    sim.offline(|| w.setup(db.as_mut(), workers));
    sim.warm_data();
    let spec = WindowSpec {
        warmup: 1000,
        measured: 2000,
        reps: 2,
    };
    let m = if workers == 1 {
        let mut s = db.session(0);
        measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).expect("txn"))
    } else {
        let cores: Vec<usize> = (0..workers).collect();
        let w = Mutex::new(w);
        let db = &*db;
        let w = &w;
        measure_workers(&sim, &cores, spec, Pacing::Lockstep, |worker| {
            let mut s = db.session(worker);
            move |_| w.lock().unwrap().exec(s.as_mut(), worker).expect("txn")
        })
    };
    (m.ipc, m.spki.iter().sum(), m.counts.invalidations)
}

fn main() {
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>14}",
        "system", "workers", "IPC", "stalls/kI", "invalidations"
    );
    for kind in [
        SystemKind::ShoreMt,
        SystemKind::DbmsD,
        SystemKind::VoltDb,
        SystemKind::dbms_m_for_tpcc(),
    ] {
        for workers in [1usize, 4] {
            let (ipc, spki, inval) = run(kind, workers);
            println!(
                "{:<10} {:>8} {:>8.2} {:>12.0} {:>14}",
                kind.label(),
                workers,
                ipc,
                spki,
                inval
            );
        }
    }
    println!(
        "\nThe paper's §7 conclusion: multi-threading does not change the\n\
         micro-architectural picture — per-worker IPC and the stall breakdown\n\
         stay essentially where the single-threaded experiments put them."
    );
}
