//! Run the full TPC-C mix on one engine and break execution time down by
//! code module — the measurement behind the paper's Figure 7.
//!
//! ```text
//! cargo run --release --example tpcc_breakdown [shore|dbmsd|voltdb|hyper|dbmsm]
//! ```

use imoltp::analysis::{measure, WindowSpec};
use imoltp::bench::tpcc::TpcCScale;
use imoltp::bench::{TpcC, Workload};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, SystemKind};

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("shore") => SystemKind::ShoreMt,
        Some("dbmsd") => SystemKind::DbmsD,
        None | Some("voltdb") => SystemKind::VoltDb,
        Some("hyper") => SystemKind::HyPer,
        Some("dbmsm") => SystemKind::dbms_m_for_tpcc(),
        Some(other) => {
            eprintln!("unknown system {other}");
            std::process::exit(2);
        }
    };

    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mut db = build_system(kind, &sim, 1);
    // A reduced TPC-C so the example loads in a couple of seconds.
    let scale = TpcCScale {
        warehouses: 2,
        customers_per_district: 1000,
        items: 20_000,
        initial_orders: 300,
    };
    let mut w = TpcC::with_scale(scale).seed(7);
    print!(
        "loading TPC-C (W={}) on {} ... ",
        scale.warehouses,
        db.name()
    );
    sim.offline(|| w.setup(db.as_mut(), 1));
    sim.warm_data();
    println!("done");

    let spec = WindowSpec {
        warmup: 300,
        measured: 600,
        reps: 3,
    };
    let mut s = db.session(0);
    let m = measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).expect("txn"));
    drop(s);

    println!(
        "\n{} on TPC-C: IPC {:.2}, {:.0} instructions/txn",
        db.name(),
        m.ipc,
        m.instr_per_txn
    );
    println!("transaction mix so far: {:?}\n", w.counts);
    println!("{:<24} {:>8} {:>10}", "module", "share", "cycles/txn");
    let mut mods = m.modules.clone();
    mods.sort_by(|a, b| b.cycles.total_cmp(&a.cycles));
    for md in mods.iter().filter(|m| m.share > 0.002) {
        println!(
            "{:<24} {:>7.1}% {:>10.0} {}",
            md.name,
            md.share * 100.0,
            md.cycles / m.txns as f64,
            if md.engine_side {
                "(inside OLTP engine)"
            } else {
                ""
            }
        );
    }
    println!(
        "\n=> {:.0}% of execution time inside the OLTP engine (storage manager).",
        m.engine_share() * 100.0
    );
    w.check_consistency(db.as_ref());
    println!("TPC-C consistency checks passed.");
}
