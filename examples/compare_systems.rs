//! Head-to-head: all five engine archetypes on the same workload — a
//! miniature of the paper's Figure 1/2 experiment.
//!
//! ```text
//! cargo run --release --example compare_systems [1mb|10mb|10gb|100gb]
//! ```

use imoltp::analysis::{markdown_table, measure, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, Workload};
use imoltp::sim::{MachineConfig, Sim};
use imoltp::systems::{build_system, SystemKind};

fn main() {
    let size = match std::env::args().nth(1).as_deref() {
        Some("1mb") => DbSize::Mb1,
        Some("10mb") => DbSize::Mb10,
        None | Some("10gb") => DbSize::Gb10,
        Some("100gb") => DbSize::Gb100,
        Some(other) => {
            eprintln!("unknown size {other}; use 1mb|10mb|10gb|100gb");
            std::process::exit(2);
        }
    };

    println!(
        "read-only micro-benchmark, {} database ({} rows), 1 probe per txn\n",
        size.label(),
        size.rows()
    );

    let mut rows = Vec::new();
    for kind in SystemKind::ALL {
        let sim = Sim::new(MachineConfig::ivy_bridge(1));
        let mut db = build_system(kind, &sim, 1);
        let mut w = MicroBench::new(size);
        sim.offline(|| w.setup(db.as_mut(), 1));
        sim.warm_data();
        let spec = WindowSpec {
            warmup: 1500,
            measured: 3000,
            reps: 3,
        };
        let mut s = db.session(0);
        let m = measure(&sim, 0, spec, |_| w.exec(s.as_mut(), 0).expect("txn"));
        let i_stalls: f64 = m.spki[..3].iter().sum();
        let d_stalls: f64 = m.spki[3..].iter().sum();
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.2}", m.ipc),
            format!("{:.0}", m.instr_per_txn),
            format!("{i_stalls:.0}"),
            format!("{d_stalls:.0}"),
            format!("{:.0}", m.tps),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "system",
                "IPC",
                "instr/txn",
                "I-stalls/kI",
                "D-stalls/kI",
                "txn/s"
            ],
            &rows
        )
    );
    println!(
        "The paper's punchline: despite completely different designs, every\n\
         system is memory-stall-bound and IPC stays near 1 on a 4-wide core."
    );
}
