//! Quickstart: build a simulated machine, run one engine on the paper's
//! micro-benchmark, and print the metrics the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use imoltp::analysis::{measure, Measurement, WindowSpec};
use imoltp::bench::{DbSize, MicroBench, Workload};
use imoltp::sim::{MachineConfig, Sim, StallEvent};
use imoltp::systems::{build_system, SystemKind};

fn main() {
    // 1. A simulated Ivy Bridge server (Table 1 of the paper).
    let sim = Sim::new(MachineConfig::ivy_bridge(1));

    // 2. An engine — here HyPer, the compiled-transaction archetype.
    let mut db = build_system(SystemKind::HyPer, &sim, 1);

    // 3. The read-only micro-benchmark at the "10 GB" scale: one random
    //    index probe per transaction against a table far beyond the LLC.
    let mut workload = MicroBench::new(DbSize::Gb10);
    sim.offline(|| workload.setup(db.as_mut(), 1)); // bulk load, unprofiled
    sim.warm_data();

    // 4. Open a session — the per-worker transaction handle — and measure
    //    with the paper's methodology: warm-up window, measured window,
    //    three averaged repetitions.
    let mut session = db.session(0);
    let spec = WindowSpec {
        warmup: 2000,
        measured: 4000,
        reps: 3,
    };
    let m: Measurement = measure(&sim, 0, spec, |_| {
        workload.exec(session.as_mut(), 0).expect("txn");
    });

    // 5. The paper's observables.
    println!("system              : {}", db.name());
    println!("instructions / txn  : {:.0}", m.instr_per_txn);
    println!("IPC                 : {:.2}  (machine can retire 4)", m.ipc);
    println!("throughput          : {:.0} txn/s (simulated)", m.tps);
    println!("stall cycles / k-instr:");
    for e in StallEvent::ALL {
        println!("  {:<6}: {:>8.1}", e.label(), m.spki[e as usize]);
    }
    println!(
        "stall fraction      : {:.0}% of cycles",
        m.stall_cycle_fraction(&sim.config()) * 100.0
    );
    println!("modules by cycle share:");
    let mut modules = m.modules.clone();
    modules.sort_by(|a, b| b.share.total_cmp(&a.share));
    for md in modules.iter().take(5) {
        println!(
            "  {:<22} {:>5.1}% {}",
            md.name,
            md.share * 100.0,
            if md.engine_side { "(engine)" } else { "" }
        );
    }
}
