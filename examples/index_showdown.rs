//! The four index structures head-to-head: LLC misses per random probe as
//! the key count grows — the §6.1 index effect in isolation, without any
//! engine around the index.
//!
//! ```text
//! cargo run --release --example index_showdown
//! ```

use imoltp::idx::{Art, CcBTree, DiskBTree, HashIndex, Index};
use imoltp::sim::{MachineConfig, Mem, Sim, StallEvent};

type IndexMaker = Box<dyn Fn(&Mem) -> Box<dyn Index>>;

fn run(name: &str, mk: &dyn Fn(&Mem) -> Box<dyn Index>, keys: u64) -> (f64, f64, u32) {
    let sim = Sim::new(MachineConfig::ivy_bridge(1));
    let mem = sim.mem(0);
    let mut index = mk(&mem);
    // Spread keys like the workloads do, so radix depth is realistic.
    for i in 0..keys {
        index.insert(&mem, i * 2048, i);
    }
    let probes = 20_000u64;
    let mut x = 88172645463325252u64;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % keys) * 2048
    };
    for _ in 0..probes {
        index.get(&mem, next()); // warm-up
    }
    let before = sim.counters(0);
    for _ in 0..probes {
        let k = next();
        assert!(index.get(&mem, k).is_some(), "{name}: lost key {k}");
    }
    let d = sim.counters(0).delta(&before);
    (
        d.miss(StallEvent::LlcD) as f64 / probes as f64,
        d.miss(StallEvent::L1d) as f64 / probes as f64,
        index.stats().height,
    )
}

fn main() {
    println!(
        "{:<12} {:>10} {:>8} {:>14} {:>14}",
        "index", "keys", "height", "LLC-D/probe", "L1D/probe"
    );
    for &keys in &[100_000u64, 1_000_000, 3_000_000] {
        let structures: Vec<(&str, IndexMaker)> = vec![
            (
                "disk-btree",
                Box::new(|m: &Mem| Box::new(DiskBTree::new(m)) as Box<dyn Index>),
            ),
            (
                "cc-btree",
                Box::new(|m: &Mem| Box::new(CcBTree::new(m)) as Box<dyn Index>),
            ),
            (
                "art",
                Box::new(|m: &Mem| Box::new(Art::new(m)) as Box<dyn Index>),
            ),
            (
                "hash",
                Box::new(move |m: &Mem| {
                    Box::new(HashIndex::with_capacity(m, keys)) as Box<dyn Index>
                }),
            ),
        ];
        for (name, mk) in &structures {
            let (llcd, l1d, height) = run(name, mk.as_ref(), keys);
            println!("{name:<12} {keys:>10} {height:>8} {llcd:>14.2} {l1d:>14.2}");
        }
        println!();
    }
    println!(
        "Expected ordering beyond LLC capacity (the paper's §6.1): the 8 KB-page\n\
         B-tree touches the most cold lines per probe, the cache-conscious\n\
         B-tree a few, ART and hash the fewest."
    );
}
